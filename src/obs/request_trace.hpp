// Request-scoped tracing for finehmmd.
//
// Every admitted SEARCH/SCAN request gets a 64-bit trace id at
// admission; the id rides through the admission queue, the coalesced or
// fused sweep, and the reply, so one request's life is reconstructable
// end to end.  When the request completes, the server folds its timing
// into one RequestTrace record:
//
//   queue_seconds      admission enqueue -> scheduler pop
//   coalesce_seconds   scheduler pop -> sweep start (window gathering)
//   sweep_seconds      the batch sweep this request rode in
//   stage_seconds[]    the sweep's ssv/msv/vit/fwd/bwd busy time,
//                      attributed to this request as its share of the
//                      batch (whole-batch seconds / batch_size)
//   serialize_seconds  result encode + socket write
//
// Completed traces land in a bounded TraceRing (newest-wins, fixed
// capacity, one mutex — completion is request-rate, not hot-path) that
// the STATS verb snapshots over the wire, and write_chrome_trace()
// renders any trace set in the same trace_event JSON the in-process
// Recorder emits, so `chrome://tracing` / Perfetto opens both.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace finehmm::obs {

/// One completed request, as recorded by the server.
struct RequestTrace {
  std::uint64_t trace_id = 0;
  std::uint32_t request_id = 0;   // client-chosen frame id
  const char* verb = "?";         // "SEARCH" | "SCAN" (static strings)
  std::uint64_t start_ns = 0;     // admission time, ns since server start
  double queue_seconds = 0.0;
  double coalesce_seconds = 0.0;
  double sweep_seconds = 0.0;
  double serialize_seconds = 0.0;
  double total_seconds = 0.0;     // admission -> reply written
  /// Per-stage busy share of the sweep attributed to this request
  /// (indexed by obs::Stage; zeros when the sweep had no telemetry).
  double stage_seconds[kStageCount] = {};
  std::uint32_t batch_size = 1;   // requests sharing the sweep
};

/// Nonzero, process-unique 64-bit trace id (splitmix64 over an atomic
/// counter seeded from the clock and pid, so restarts don't collide).
std::uint64_t next_trace_id();

/// "0x" + 16 lowercase hex digits — the one rendering every surface
/// (logs, replies, /statusz, chrome traces) uses for a trace id.
std::string trace_id_hex(std::uint64_t trace_id);

/// Bounded ring of the most recent completed traces.  push() overwrites
/// the oldest once full; snapshot() returns oldest-first.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(const RequestTrace& trace) FINEHMM_EXCLUDES(mu_);
  std::vector<RequestTrace> snapshot() const FINEHMM_EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;

  mutable Mutex mu_;
  /// Grows to capacity_, then wraps (next_ is the overwrite cursor).
  std::vector<RequestTrace> ring_ FINEHMM_GUARDED_BY(mu_);
  std::size_t next_ FINEHMM_GUARDED_BY(mu_) = 0;
};

/// Render traces in the Chrome trace_event format (same shape as
/// Recorder::write_chrome_trace: "X" events, microsecond ts/dur, one
/// pid).  Each request gets its own tid so its queue/coalesce/sweep/
/// serialize spans stack on one track; the trace id and batch size ride
/// in `args`.
void write_chrome_trace(std::ostream& os,
                        const std::vector<RequestTrace>& traces);

/// One trace as a JSON object (the STATS v2 `recent_traces` element and
/// the slow-request log share this shape).  `indent` prefixes every
/// line, matching ScanTelemetry::write_json.
void write_trace_json(std::ostream& os, const RequestTrace& trace,
                      int indent = 0);

}  // namespace finehmm::obs
