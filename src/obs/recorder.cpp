#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>

namespace finehmm::obs {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kSsv: return "ssv";
    case Stage::kMsv: return "msv";
    case Stage::kVit: return "vit";
    case Stage::kFwd: return "fwd";
    case Stage::kBwd: return "bwd";
    case Stage::kOther: return "other";
  }
  return "?";
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kSequencesScored: return "sequences_scored";
    case Counter::kEnqueueStalls: return "enqueue_stalls";
    case Counter::kHelpFirstRescues: return "help_first_rescues";
    case Counter::kDecodedBytes: return "decoded_bytes";
    case Counter::kSpansDropped: return "spans_dropped";
    case Counter::kCount: break;
  }
  return "?";
}

namespace {

bool env_enabled() {
  static const bool on = [] {
    const char* env = std::getenv("FINEHMM_OBS");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return on;
}

}  // namespace

Recorder::Recorder(RecorderConfig cfg)
    : cfg_(cfg),
      enabled_(cfg.enabled && env_enabled()),
      epoch_(Clock::now()) {}

void Recorder::reserve_threads(std::size_t n) {
  if (!enabled_) return;
  while (logs_.size() < n) {
    const auto tid = static_cast<std::uint32_t>(logs_.size());
    logs_.emplace_back(std::unique_ptr<ThreadLog>(
        new ThreadLog(tid, cfg_.tracing, cfg_.max_events_per_thread)));
  }
}

double Recorder::stage_seconds(Stage s) const {
  double total = 0.0;
  for (const auto& log : logs_) total += log->stage_seconds(s);
  return total;
}

std::uint64_t Recorder::stage_items(Stage s) const {
  std::uint64_t total = 0;
  for (const auto& log : logs_) total += log->stage_items(s);
  return total;
}

std::uint64_t Recorder::counter(Counter c) const {
  std::uint64_t total = 0;
  for (const auto& log : logs_) total += log->counter(c);
  return total;
}

std::vector<SpanEvent> Recorder::merged_events() const {
  std::vector<SpanEvent> all;
  std::size_t n = 0;
  for (const auto& log : logs_) n += log->events().size();
  all.reserve(n);
  for (const auto& log : logs_)
    all.insert(all.end(), log->events().begin(), log->events().end());
  std::stable_sort(all.begin(), all.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.start_ns != b.start_ns)
                       return a.start_ns < b.start_ns;
                     return a.thread < b.thread;
                   });
  return all;
}

void Recorder::write_chrome_trace(std::ostream& os) const {
  // "X" (complete) events with microsecond ts/dur, one pid, tid = dense
  // worker id, plus thread_name metadata so Perfetto labels the tracks.
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (std::size_t w = 0; w < logs_.size(); ++w) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
       << "\"tid\": " << w << ", \"args\": {\"name\": \"worker-" << w
       << "\"}}";
  }
  for (const SpanEvent& e : merged_events()) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"" << e.name << "\", \"ph\": \"X\", \"cat\": "
       << "\"scan\", \"pid\": 1, \"tid\": " << e.thread
       << ", \"ts\": " << static_cast<double>(e.start_ns) * 1e-3
       << ", \"dur\": " << static_cast<double>(e.dur_ns) * 1e-3 << "}";
  }
  os << "\n]}\n";
}

void Recorder::clear() {
  for (auto& log : logs_) {
    for (int s = 0; s < kStageCount; ++s) {
      log->stage_seconds_[s] = 0.0;
      log->stage_items_[s] = 0;
    }
    for (int c = 0; c < kCounterCount; ++c) log->counters_[c] = 0;
    log->events_.clear();
  }
  epoch_ = Clock::now();
}

}  // namespace finehmm::obs
