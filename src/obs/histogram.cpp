#include "obs/histogram.hpp"

#include <cmath>

namespace finehmm::obs {

void Histogram::merge(const Histogram& other) {
  for (std::uint64_t i = 0; i < B::kBucketCount; ++i)
    counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; q = 0 still needs one sample.
  std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  if (target > count_) target = count_;
  std::uint64_t cumulative = 0;
  for (std::uint64_t i = 0; i < B::kBucketCount; ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      // Never report past the true maximum (the top bucket's upper edge
      // can overshoot the largest recorded value by the bucket width).
      const std::uint64_t edge = B::upper_bound(i);
      return edge < max_ ? edge : max_;
    }
  }
  return max_;
}

void Histogram::clear() {
  for (std::uint64_t i = 0; i < B::kBucketCount; ++i) counts_[i] = 0;
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

Histogram ConcurrentHistogram::snapshot() const {
  // count is recomputed from the buckets (not the count_ atomic) so the
  // snapshot is internally consistent even while recorders are running:
  // every bucket read is individually exact, and quantile walks only
  // ever see a count that matches the buckets it walks.  sum comes from
  // the sum_ atomic (exact once recorders quiesce); max is the top
  // nonempty bucket's upper edge, the best a lock-free recorder offers.
  Histogram out;
  for (std::uint64_t i = 0; i < B::kBucketCount; ++i) {
    const std::uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    out.counts_[i] = n;
    out.count_ += n;
    out.max_ = B::upper_bound(i);
  }
  out.sum_ = sum_.load(std::memory_order_relaxed);
  return out;
}

LatencyQuantiles latency_quantiles(const Histogram& h) {
  LatencyQuantiles q;
  q.count = h.count();
  q.sum = h.sum();
  q.p50 = h.quantile(0.50);
  q.p90 = h.quantile(0.90);
  q.p99 = h.quantile(0.99);
  q.p999 = h.quantile(0.999);
  return q;
}

}  // namespace finehmm::obs
