#include "obs/request_trace.hpp"

#include <chrono>
#include <cstdio>
#include <ostream>

#include "obs/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace finehmm::obs {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t id_seed() {
  std::uint64_t seed = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#if defined(__unix__) || defined(__APPLE__)
  seed ^= static_cast<std::uint64_t>(::getpid()) << 32;
#endif
  return seed;
}

}  // namespace

std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> counter{id_seed()};
  for (;;) {
    const std::uint64_t id =
        splitmix64(counter.fetch_add(1, std::memory_order_relaxed));
    if (id != 0) return id;  // 0 means "no trace" on the wire
  }
}

std::string trace_id_hex(std::uint64_t trace_id) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

void TraceRing::push(const RequestTrace& trace) {
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
  } else {
    ring_[next_] = trace;
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<RequestTrace> TraceRing::snapshot() const {
  MutexLock lock(mu_);
  std::vector<RequestTrace> out;
  out.reserve(ring_.size());
  // Once full, next_ points at the oldest entry.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

namespace {

/// One "X" event on the request's track.  start/dur in seconds relative
/// to the request's admission; ts in the file is microseconds.
void chrome_event(std::ostream& os, bool& first, const char* name,
                  std::size_t tid, double base_us, double start_s,
                  double dur_s, const RequestTrace& t) {
  if (dur_s <= 0.0) return;
  if (!first) os << ",";
  first = false;
  os << "\n  {\"name\": \"" << name << "\", \"ph\": \"X\", \"cat\": "
     << "\"request\", \"pid\": 1, \"tid\": " << tid
     << ", \"ts\": " << base_us + start_s * 1e6
     << ", \"dur\": " << dur_s * 1e6 << ", \"args\": {\"trace_id\": \""
     << trace_id_hex(t.trace_id) << "\", \"batch_size\": " << t.batch_size
     << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<RequestTrace>& traces) {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const RequestTrace& t = traces[i];
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
       << "\"tid\": " << i << ", \"args\": {\"name\": \"" << t.verb << " "
       << trace_id_hex(t.trace_id) << "\"}}";
    const double base_us = static_cast<double>(t.start_ns) * 1e-3;
    double at = 0.0;
    chrome_event(os, first, "queue", i, base_us, at, t.queue_seconds, t);
    at += t.queue_seconds;
    chrome_event(os, first, "coalesce", i, base_us, at, t.coalesce_seconds,
                 t);
    at += t.coalesce_seconds;
    chrome_event(os, first, "sweep", i, base_us, at, t.sweep_seconds, t);
    // Stage shares nest inside the sweep span, back to back.
    double stage_at = at;
    for (int s = 0; s < kStageCount; ++s) {
      chrome_event(os, first, stage_name(static_cast<Stage>(s)), i, base_us,
                   stage_at, t.stage_seconds[s], t);
      stage_at += t.stage_seconds[s];
    }
    at += t.sweep_seconds;
    chrome_event(os, first, "serialize", i, base_us, at,
                 t.serialize_seconds, t);
  }
  os << "\n]}\n";
}

void write_trace_json(std::ostream& os, const RequestTrace& trace,
                      int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "{\n"
     << pad << "  \"trace_id\": \"" << trace_id_hex(trace.trace_id)
     << "\",\n"
     << pad << "  \"request_id\": " << trace.request_id << ",\n"
     << pad << "  \"verb\": \"" << trace.verb << "\",\n"
     << pad << "  \"start_ns\": " << trace.start_ns << ",\n"
     << pad << "  \"queue_seconds\": " << trace.queue_seconds << ",\n"
     << pad << "  \"coalesce_seconds\": " << trace.coalesce_seconds << ",\n"
     << pad << "  \"sweep_seconds\": " << trace.sweep_seconds << ",\n"
     << pad << "  \"serialize_seconds\": " << trace.serialize_seconds
     << ",\n"
     << pad << "  \"total_seconds\": " << trace.total_seconds << ",\n"
     << pad << "  \"batch_size\": " << trace.batch_size << ",\n"
     << pad << "  \"stage_seconds\": {";
  for (int s = 0; s < kStageCount; ++s) {
    if (s != 0) os << ", ";
    os << "\"" << stage_name(static_cast<Stage>(s))
       << "\": " << trace.stage_seconds[s];
  }
  os << "}\n" << pad << "}";
}

}  // namespace finehmm::obs
