// ScanTelemetry: the machine-readable performance snapshot every engine
// emits through one schema.
//
// One scan — serial CPU, barrier-parallel, overlapped streaming, or the
// simulated GPU — fills one ScanTelemetry.  The shape is deliberately
// flat and self-describing so the perf trajectory documents itself:
// bench_throughput embeds it into BENCH_throughput.json, hmmsearch_tool
// dumps it behind --telemetry, and docs/observability.md specifies the
// schema.  The SIMT simulator's PerfCounters surface as per-stage
// counter key/value pairs, so host and device runs read the same way.
#pragma once

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/recorder.hpp"
#include "simt/counters.hpp"

namespace finehmm::obs {

/// True when `units / seconds` is a meaningful rate: a positive,
/// non-denormal, finite elapsed time and a finite numerator.  Guards
/// every throughput computation so a zero-cost stage (nothing survived,
/// clock too coarse) reports "no rate" instead of inf/nan.
inline bool valid_rate(double units, double seconds) {
  return std::isfinite(units) && std::isfinite(seconds) &&
         seconds >= 1e-12;  // < 1 ns cannot be a real measurement
}

/// units/seconds, or 0.0 when the elapsed time is unusable.
inline double safe_rate(double units, double seconds) {
  return valid_rate(units, seconds) ? units / seconds : 0.0;
}

/// JSON fragment for a rate: the number, or `null` when the elapsed
/// time is zero/denormal — never `inf` or `nan`, which are not JSON.
std::string json_rate(double units, double seconds);

/// Prometheus label-value escaping: backslash, double quote, and
/// newline must be escaped inside `label="value"` or the exposition
/// breaks (a model named `pf"oo` would otherwise truncate the series).
/// Shared by every exporter that embeds free-form text in a label.
std::string prometheus_escape_label(const std::string& value);

/// One pipeline stage as every engine reports it.
struct StageTelemetry {
  std::string stage;            // "ssv" | "msv" | "vit" | "fwd" | "bwd"
  std::uint64_t n_in = 0;       // sequences entering
  std::uint64_t n_passed = 0;   // sequences surviving
  double cells = 0.0;           // DP cells evaluated
  double wall_seconds = 0.0;    // stage wall clock (0 when stages overlap)
  double busy_seconds = 0.0;    // per-thread busy time, merged at drain
  /// Extra per-stage counters (the SIMT simulator's PerfCounters land
  /// here; host stages may add their own).  Keys are schema-stable.
  std::vector<std::pair<std::string, double>> counters;

  double pass_rate() const {
    return n_in ? static_cast<double>(n_passed) / static_cast<double>(n_in)
                : 0.0;
  }
};

/// The overlapped engine's survivor queue, end-of-scan totals.
/// Invariants (tested): dequeued == enqueued (every produced survivor is
/// drained), enqueue_stalls counts rejected attempts only, and
/// max_depth <= capacity.
struct QueueTelemetry {
  std::uint64_t capacity = 0;
  std::uint64_t enqueued = 0;            // successful pushes
  std::uint64_t dequeued = 0;            // successful pops
  std::uint64_t enqueue_stalls = 0;      // try_push rejections (ring full)
  std::uint64_t help_first_rescues = 0;  // producer drained one itself
  std::uint64_t max_depth = 0;           // high-water occupancy
};

/// One geometric length bucket of the scan schedule, in emission order
/// (longest bucket first).
struct BucketTelemetry {
  std::uint64_t sequences = 0;
  std::uint64_t residues = 0;
};

/// One worker's share of the scan.
struct ThreadTelemetry {
  std::uint32_t thread = 0;
  double stage_busy_seconds[kStageCount] = {};
  std::uint64_t stage_items[kStageCount] = {};
  std::uint64_t sequences_scored = 0;
  std::uint64_t help_first_rescues = 0;
  std::uint64_t decoded_bytes = 0;
  std::uint64_t spans = 0;
  std::uint64_t spans_dropped = 0;
};

struct ScanTelemetry {
  std::string engine;           // "cpu_serial" | "cpu_parallel" |
                                // "cpu_overlapped" | "gpu_sim"
  std::uint64_t threads = 1;
  std::uint64_t sequences = 0;  // database size
  std::uint64_t residues = 0;   // database residues
  double wall_seconds = 0.0;    // end-to-end scan wall clock

  // Where the residues lived during the scan: bytes resident in the
  // mmap'd .fsqdb (packed 5-bit) vs. decoded on the heap, plus bytes
  // unpacked into per-worker scratch for the word stages.
  bool zero_copy = false;
  std::uint64_t mapped_bytes = 0;
  std::uint64_t heap_bytes = 0;
  std::uint64_t decoded_bytes = 0;

  std::vector<StageTelemetry> stages;
  std::optional<QueueTelemetry> queue;       // overlapped engine only
  std::vector<BucketTelemetry> buckets;      // bucketed engines only
  std::vector<ThreadTelemetry> per_thread;   // one entry per worker

  /// Total DP cells across all stages.
  double total_cells() const {
    double c = 0.0;
    for (const auto& s : stages) c += s.cells;
    return c;
  }
  /// End-to-end cells/sec (0 when the wall clock is unusable).
  double cells_per_sec() const {
    return safe_rate(total_cells(), wall_seconds);
  }
  const StageTelemetry* stage(const std::string& name) const;

  /// The unified JSON schema (docs/observability.md).  `indent` is the
  /// number of leading spaces on every line, so callers can embed the
  /// object into a larger document.
  void write_json(std::ostream& os, int indent = 0) const;
  /// Flat Prometheus text exposition (one `finehmm_*` family per
  /// metric, labelled by engine/stage/thread).
  void write_prometheus(std::ostream& os) const;
};

/// Flatten the SIMT simulator's counters into schema-stable key/value
/// pairs for StageTelemetry::counters.
std::vector<std::pair<std::string, double>> counters_kv(
    const simt::PerfCounters& c);

}  // namespace finehmm::obs
