// Low-overhead scan telemetry: per-thread span tracing and stage timing.
//
// The paper's argument is built on fine-grained performance accounting
// (Fig. 1's stage breakdown, Fig. 9's per-stage speedups, the kernel
// counter analysis of §V); this module gives the host pipeline the same
// discipline.  A Recorder owns one ThreadLog per dense worker id.  Each
// log is written only by its owning worker — no atomics, no locks on the
// recording path — and merged serially after the crew joins, so per-run
// aggregates are deterministic regardless of scheduling.
//
// Two independent gates keep the cost at zero when unused:
//   * compile time: building with -DFINEHMM_OBS_ENABLED=0 turns OBS_SPAN
//     into a no-op statement (nothing is even constructed);
//   * run time: engines carry a `Recorder*` that defaults to null, and a
//     constructed Recorder can itself be disabled (or force-disabled via
//     the FINEHMM_OBS=0 environment variable), in which case log()
//     returns null and every instrumentation site reduces to one
//     pointer test.  The disabled path performs no heap allocation,
//     which tests/test_telemetry.cpp measures rather than asserts.
//
// Concurrency contract: thread-compatible by partitioning, not by
// locking — each ThreadLog has exactly one writer (its dense worker id)
// and is read only after the crew joins, so there is no shared mutable
// state for a mutex to guard and no capability annotations here
// (docs/static_analysis.md §lock-free).  The single-writer rule is the
// invariant; TSan enforces it dynamically in the tsan preset.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "util/check.hpp"

#ifndef FINEHMM_OBS_ENABLED
#define FINEHMM_OBS_ENABLED 1
#endif

namespace finehmm::obs {

/// Pipeline stages a worker can bank busy time against.  kBwd is the
/// checkpointed Backward + posterior decode over Forward survivors;
/// kOther covers non-cascade work (traceback, report assembly).
enum class Stage : int {
  kSsv = 0,
  kMsv = 1,
  kVit = 2,
  kFwd = 3,
  kBwd = 4,
  kOther = 5
};
inline constexpr int kStageCount = 6;
const char* stage_name(Stage s);

/// Free-running per-thread counters merged alongside the stage clocks.
enum class Counter : int {
  kSequencesScored = 0,  // sequences this worker pushed through any filter
  kEnqueueStalls,        // try_push rejections this worker observed
  kHelpFirstRescues,     // survivors rescored by their producer (full ring)
  kDecodedBytes,         // residues unpacked into scratch for word stages
  kSpansDropped,         // spans discarded after max_events_per_thread
  kCount
};
inline constexpr int kCounterCount = static_cast<int>(Counter::kCount);
const char* counter_name(Counter c);

/// One completed span: a named interval on one worker's timeline, in
/// nanoseconds since the owning Recorder's epoch.  `name` must outlive
/// the Recorder (the instrumentation sites use string literals).
struct SpanEvent {
  const char* name = "";
  std::uint32_t thread = 0;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
};

/// Per-worker telemetry sink.  Only the owning worker may call the
/// mutating methods; the Recorder reads it after the crew joins.
/// Cacheline-aligned so adjacent workers' hot counters never share a
/// line.
class alignas(64) ThreadLog {
 public:
  void add_stage(Stage s, double seconds, std::uint64_t items = 0) {
    stage_seconds_[static_cast<int>(s)] += seconds;
    stage_items_[static_cast<int>(s)] += items;
  }
  void add(Counter c, std::uint64_t v = 1) {
    counters_[static_cast<int>(c)] += v;
  }
  /// Append a completed span; drops (and counts the drop) beyond the
  /// configured per-thread event budget, so a runaway scan cannot grow
  /// the log without bound.
  void record_span(const char* name, std::int64_t start_ns,
                   std::int64_t dur_ns) {
    if (!tracing_) return;
    if (events_.size() >= max_events_) {
      add(Counter::kSpansDropped);
      return;
    }
    events_.push_back(SpanEvent{name, thread_, start_ns, dur_ns});
  }

  std::uint32_t thread() const noexcept { return thread_; }
  double stage_seconds(Stage s) const {
    return stage_seconds_[static_cast<int>(s)];
  }
  std::uint64_t stage_items(Stage s) const {
    return stage_items_[static_cast<int>(s)];
  }
  std::uint64_t counter(Counter c) const {
    return counters_[static_cast<int>(c)];
  }
  const std::vector<SpanEvent>& events() const noexcept { return events_; }

 private:
  friend class Recorder;
  ThreadLog(std::uint32_t thread, bool tracing, std::size_t max_events)
      : thread_(thread), tracing_(tracing), max_events_(max_events) {
    if (tracing_) events_.reserve(std::min<std::size_t>(max_events_, 1024));
  }

  std::uint32_t thread_;
  bool tracing_;
  std::size_t max_events_;
  double stage_seconds_[kStageCount] = {};
  std::uint64_t stage_items_[kStageCount] = {};
  std::uint64_t counters_[kCounterCount] = {};
  std::vector<SpanEvent> events_;
};

struct RecorderConfig {
  /// Collect SpanEvents (the Chrome trace).  Stage clocks and counters
  /// are collected either way; tracing only adds the per-span log.
  bool tracing = true;
  /// Per-thread span budget; spans past it are dropped and counted.
  std::size_t max_events_per_thread = std::size_t{1} << 15;
  /// Master runtime switch; a disabled Recorder hands out null logs.
  bool enabled = true;
};

/// Owns the per-thread logs of one or more scans.  Thread-compatible by
/// construction rather than by locking: reserve_threads() and the
/// merging accessors must be called at serial points (before the crew
/// starts / after it joins); log(w) is then safe to use concurrently
/// because distinct workers touch distinct logs.
class Recorder {
 public:
  explicit Recorder(RecorderConfig cfg = {});

  /// False when the config disabled it or FINEHMM_OBS=0 is set in the
  /// environment (checked once per process).
  bool enabled() const noexcept { return enabled_; }
  bool tracing() const noexcept { return enabled_ && cfg_.tracing; }

  /// Ensure logs for workers [0, n) exist.  Serial-point only.
  void reserve_threads(std::size_t n);
  std::size_t threads() const noexcept { return logs_.size(); }

  /// Worker w's log, or null when disabled (every instrumentation site
  /// must tolerate null).  reserve_threads(w + 1) must have happened.
  ThreadLog* log(std::size_t w) {
    if (!enabled_) return nullptr;
    FINEHMM_CHECK(w < logs_.size(),
                  "worker log requested before reserve_threads covered it");
    return logs_[w].get();
  }
  const ThreadLog& log_at(std::size_t w) const { return *logs_[w]; }

  /// Monotonic nanoseconds since this Recorder was constructed.
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - epoch_)
        .count();
  }

  // --- Serial-point merges (deterministic: index order, plain sums) ---
  double stage_seconds(Stage s) const;
  std::uint64_t stage_items(Stage s) const;
  std::uint64_t counter(Counter c) const;
  /// All spans from all threads, sorted by (start, thread).
  std::vector<SpanEvent> merged_events() const;

  /// Chrome trace_event JSON ("X" complete events, microsecond
  /// timestamps) — load in chrome://tracing or https://ui.perfetto.dev.
  void write_chrome_trace(std::ostream& os) const;

  /// Drop all collected data but keep the thread slots and the epoch.
  void clear();

 private:
  using Clock = std::chrono::steady_clock;
  RecorderConfig cfg_;
  bool enabled_;
  Clock::time_point epoch_;
  // unique_ptr slots: ThreadLog addresses stay stable across
  // reserve_threads growth, so a worker's cached pointer never dangles.
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

/// RAII span: records one SpanEvent on worker `thread` when it goes out
/// of scope, and optionally banks the elapsed time against a Stage.
/// Constructing one against a null Recorder (or a disabled one) is a
/// no-op that touches no memory beyond the object itself.
class ScopedSpan {
 public:
  ScopedSpan(Recorder* rec, std::size_t thread, const char* name)
      : ScopedSpan(rec, thread, name, /*stage=*/nullptr) {}
  ScopedSpan(Recorder* rec, std::size_t thread, const char* name, Stage stage)
      : ScopedSpan(rec, thread, name, &stage) {}
  ~ScopedSpan() {
    if (!rec_) return;
    const std::int64_t end = rec_->now_ns();
    if (has_stage_)
      log_->add_stage(stage_, static_cast<double>(end - start_ns_) * 1e-9,
                      items_);
    log_->record_span(name_, start_ns_, end - start_ns_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Work items the span covered (merged into the stage item count).
  void set_items(std::uint64_t n) { items_ = n; }

 private:
  ScopedSpan(Recorder* rec, std::size_t thread, const char* name,
             const Stage* stage) {
    if (rec == nullptr || !rec->enabled()) return;
    rec_ = rec;
    log_ = rec->log(thread);
    name_ = name;
    if (stage != nullptr) {
      has_stage_ = true;
      stage_ = *stage;
    }
    start_ns_ = rec->now_ns();
  }

  Recorder* rec_ = nullptr;
  ThreadLog* log_ = nullptr;
  const char* name_ = "";
  Stage stage_ = Stage::kOther;
  bool has_stage_ = false;
  std::uint64_t items_ = 0;
  std::int64_t start_ns_ = 0;
};

}  // namespace finehmm::obs

// OBS_SPAN(rec, thread, "name"[, stage]): scoped trace span on worker
// `thread`.  Compiles to nothing under -DFINEHMM_OBS_ENABLED=0.
#if FINEHMM_OBS_ENABLED
#define FINEHMM_OBS_CONCAT_(a, b) a##b
#define FINEHMM_OBS_CONCAT(a, b) FINEHMM_OBS_CONCAT_(a, b)
#define OBS_SPAN(rec, thread, ...)                                  \
  ::finehmm::obs::ScopedSpan FINEHMM_OBS_CONCAT(obs_span_, __LINE__)( \
      (rec), (thread), __VA_ARGS__)
#else
#define OBS_SPAN(rec, thread, ...) ((void)0)
#endif
