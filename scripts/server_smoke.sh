#!/usr/bin/env bash
# End-to-end smoke of the resident search daemon over real TCP, wired
# into ctest and scripts/check.sh --server-smoke (docs/server.md).
#
# Builds a demo model and a packed database with the example tools,
# starts finehmmd on an ephemeral port (with the HTTP observability
# endpoint on a second one), then proves the full client surface: PING,
# a remote search whose tblout is BIT-IDENTICAL to a direct
# hmmsearch_tool run on the same database (reply stamped with a trace
# id), hmmsearch_tool --connect against the daemon, the STATS verb
# (pretty and JSON forms), /metrics + /healthz (valid Prometheus whose
# request-latency p99 matches the STATS value), the tools' exit-code
# contract, and a clean SIGTERM drain (stats flushed, pid file removed,
# exit 0).
set -euo pipefail

TOOLS_DIR=${1:?usage: server_smoke.sh <tools-bin-dir> <examples-bin-dir>}
EXAMPLES_DIR=${2:?usage: server_smoke.sh <tools-bin-dir> <examples-bin-dir>}
WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== stage a model and a packed database =="
"$EXAMPLES_DIR/hmmbuild_tool" --demo "$WORK/model.hmm" > /dev/null
"$EXAMPLES_DIR/hmmemit_tool" "$WORK/model.hmm" 12 "$WORK/homologs.fasta"
"$EXAMPLES_DIR/seqconvert_tool" "$WORK/homologs.fasta" "$WORK/db.fsqdb"

echo "== start finehmmd on an ephemeral port (+ metrics endpoint) =="
"$TOOLS_DIR/finehmmd" --port 0 --threads 2 --pid-file "$WORK/d.pid" \
  --metrics-port 0 --slow-ms 1 "$WORK/db.fsqdb" > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$WORK/daemon.log" 2>/dev/null && break
  kill -0 "$DAEMON_PID" 2>/dev/null || {
    echo "daemon died during startup"; cat "$WORK/daemon.log"; exit 1; }
  sleep 0.1
done
PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
  "$WORK/daemon.log")
[ -n "$PORT" ] || { echo "no port in daemon log"; cat "$WORK/daemon.log"; exit 1; }
ADDR="127.0.0.1:$PORT"
METRICS_PORT=$(sed -n 's/.*metrics on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
  "$WORK/daemon.log")
[ -n "$METRICS_PORT" ] || {
  echo "no metrics port in daemon log"; cat "$WORK/daemon.log"; exit 1; }
echo "daemon at $ADDR, metrics at 127.0.0.1:$METRICS_PORT (pid $DAEMON_PID)"
grep -qx "$DAEMON_PID" "$WORK/d.pid"

# Plain-python HTTP GET (no curl dependency in CI containers).
http_get() {
  python3 -c 'import sys, urllib.request
print(urllib.request.urlopen(sys.argv[1], timeout=10).read().decode(), end="")' \
    "http://127.0.0.1:$METRICS_PORT$1"
}

echo "== ping =="
"$TOOLS_DIR/finehmm_client" "$ADDR" --ping | grep -qx pong

echo "== remote search is bit-identical to a direct scan =="
"$EXAMPLES_DIR/hmmsearch_tool" --tblout "$WORK/local.tbl" \
  "$WORK/model.hmm" "$WORK/db.fsqdb" > /dev/null
"$TOOLS_DIR/finehmm_client" "$ADDR" --tblout "$WORK/remote.tbl" \
  "$WORK/model.hmm" > /dev/null 2> "$WORK/client.err"
cmp "$WORK/local.tbl" "$WORK/remote.tbl" || {
  echo "finehmm_client tblout differs from the direct scan"; exit 1; }

echo "== reply carries a request-scoped trace id =="
grep -q "trace_id 0x" "$WORK/client.err" || {
  echo "client did not report a trace id"; cat "$WORK/client.err"; exit 1; }
TRACE_ID=$(sed -n 's/.*trace_id \(0x[0-9a-f]*\).*/\1/p' "$WORK/client.err" \
  | head -n1)
echo "search served as trace $TRACE_ID"

echo "== hmmsearch_tool --connect routes through the daemon =="
"$EXAMPLES_DIR/hmmsearch_tool" --connect "$ADDR" \
  --tblout "$WORK/remote2.tbl" "$WORK/model.hmm" > /dev/null
cmp "$WORK/local.tbl" "$WORK/remote2.tbl" || {
  echo "hmmsearch_tool --connect tblout differs from the direct scan"; exit 1; }

echo "== STATS verb (pretty + raw JSON) =="
"$TOOLS_DIR/finehmm_client" "$ADDR" --stats > "$WORK/stats.txt"
grep -q "finehmmd stats (schema finehmm.server_stats.v2)" "$WORK/stats.txt"
grep -q "latency e2e:" "$WORK/stats.txt"

echo "== closed-loop bench smoke =="
"$TOOLS_DIR/finehmm_client" "$ADDR" --bench 3 --clients 2 \
  "$WORK/model.hmm" | grep -q '"requests_per_sec"'

# Snapshot the raw stats JSON AFTER the bench so the histograms are
# quiescent: nothing else touches the daemon between this STATS call and
# the /metrics scrape below, which lets us demand an exact p99 match.
# Histograms are recorded just after each reply is sent, so poll until
# the e2e sample count has caught up with requests_completed.
for _ in $(seq 1 100); do
  "$TOOLS_DIR/finehmm_client" "$ADDR" --stats-json > "$WORK/stats.json"
  python3 - "$WORK/stats.json" <<'PY' && break
import json, sys
s = json.load(open(sys.argv[1]))
sys.exit(0 if s["latency"]["e2e"]["count"] >= s["requests_completed"] else 1)
PY
  sleep 0.1
done
grep -q "finehmm.server_stats.v2" "$WORK/stats.json"
grep -q '"db_sweeps"' "$WORK/stats.json"
grep -q '"latency"' "$WORK/stats.json"
grep -q '"recent_traces"' "$WORK/stats.json"
grep -q "$TRACE_ID" "$WORK/stats.json" || {
  echo "trace $TRACE_ID missing from STATS recent_traces"; exit 1; }

echo "== /metrics is valid Prometheus and matches STATS =="
http_get /metrics > "$WORK/metrics.txt"
http_get /healthz > "$WORK/healthz.txt"
grep -qx "ok" "$WORK/healthz.txt" || {
  echo "/healthz did not report ok"; cat "$WORK/healthz.txt"; exit 1; }
http_get /statusz | grep -q "finehmmd status" || {
  echo "/statusz missing its banner"; exit 1; }
python3 - "$WORK/metrics.txt" "$WORK/stats.json" <<'PY'
import json, sys

metrics = open(sys.argv[1]).read()
stats = json.load(open(sys.argv[2]))

# Every sample family must be declared with # TYPE and # HELP.
typed, helped, families = set(), set(), set()
for line in metrics.splitlines():
    if line.startswith("# TYPE "):
        typed.add(line.split()[2])
    elif line.startswith("# HELP "):
        helped.add(line.split()[2])
    elif line and not line.startswith("#"):
        name = line.split("{")[0].split()[0]
        base = name
        for suffix in ("_sum", "_count", "_bucket"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
        families.add(base if base in typed else name)
undeclared = sorted(f for f in families if f not in typed or f not in helped)
assert not undeclared, f"families without TYPE/HELP: {undeclared}"

for want in ("finehmm_up 1",
             'finehmm_request_latency_seconds{quantile="0.99"}',
             "finehmm_queue_wait_seconds",
             "finehmm_sweep_seconds",
             'finehmm_server_events_total{event="requests_completed"}'):
    assert want in metrics, f"missing from /metrics: {want}"

# The exported p99 must equal the STATS JSON value for the same window.
p99_line = [l for l in metrics.splitlines()
            if l.startswith('finehmm_request_latency_seconds{quantile="0.99"}')]
assert len(p99_line) == 1, p99_line
metrics_p99 = float(p99_line[0].split()[-1])
stats_p99 = stats["latency"]["e2e"]["p99_seconds"]
assert metrics_p99 == stats_p99, (metrics_p99, stats_p99)
print(f"p99 match: /metrics {metrics_p99} == STATS {stats_p99}")
PY

echo "== exit-code contract (0 ok / 2 bad args / 3 I/O failure) =="
rc=0; "$TOOLS_DIR/finehmm_client" --no-such-flag > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "bad args gave exit $rc, want 2"; exit 1; }
rc=0; "$TOOLS_DIR/finehmm_client" "$ADDR" "$WORK/missing.hmm" \
  > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || { echo "missing model file gave exit $rc, want 3"; exit 1; }
# Port 1 is never a finehmmd: connection refused is an I/O failure.
rc=0; "$TOOLS_DIR/finehmm_client" 127.0.0.1:1 --ping > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || { echo "refused connection gave exit $rc, want 3"; exit 1; }

echo "== SIGTERM drain =="
kill -TERM "$DAEMON_PID"
rc=0; wait "$DAEMON_PID" || rc=$?
DAEMON_PID=""
[ "$rc" -eq 0 ] || { echo "daemon exited $rc after SIGTERM, want 0";
  cat "$WORK/daemon.log"; exit 1; }
grep -q "finehmm.server_stats.v2" "$WORK/daemon.log" || {
  echo "drained daemon did not flush its stats"; cat "$WORK/daemon.log"; exit 1; }
grep -q "drained, bye" "$WORK/daemon.log"
[ ! -f "$WORK/d.pid" ] || { echo "pid file survived the drain"; exit 1; }

echo "ALL SERVER SMOKE TESTS PASSED"
