#!/usr/bin/env bash
# End-to-end smoke of the resident search daemon over real TCP, wired
# into ctest and scripts/check.sh --server-smoke (docs/server.md).
#
# Builds a demo model and a packed database with the example tools,
# starts finehmmd on an ephemeral port, then proves the full client
# surface: PING, a remote search whose tblout is BIT-IDENTICAL to a
# direct hmmsearch_tool run on the same database, hmmsearch_tool
# --connect against the daemon, the STATS verb, the tools' exit-code
# contract, and a clean SIGTERM drain (stats flushed, pid file removed,
# exit 0).
set -euo pipefail

TOOLS_DIR=${1:?usage: server_smoke.sh <tools-bin-dir> <examples-bin-dir>}
EXAMPLES_DIR=${2:?usage: server_smoke.sh <tools-bin-dir> <examples-bin-dir>}
WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== stage a model and a packed database =="
"$EXAMPLES_DIR/hmmbuild_tool" --demo "$WORK/model.hmm" > /dev/null
"$EXAMPLES_DIR/hmmemit_tool" "$WORK/model.hmm" 12 "$WORK/homologs.fasta"
"$EXAMPLES_DIR/seqconvert_tool" "$WORK/homologs.fasta" "$WORK/db.fsqdb"

echo "== start finehmmd on an ephemeral port =="
"$TOOLS_DIR/finehmmd" --port 0 --threads 2 --pid-file "$WORK/d.pid" \
  "$WORK/db.fsqdb" > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$WORK/daemon.log" 2>/dev/null && break
  kill -0 "$DAEMON_PID" 2>/dev/null || {
    echo "daemon died during startup"; cat "$WORK/daemon.log"; exit 1; }
  sleep 0.1
done
PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' \
  "$WORK/daemon.log")
[ -n "$PORT" ] || { echo "no port in daemon log"; cat "$WORK/daemon.log"; exit 1; }
ADDR="127.0.0.1:$PORT"
echo "daemon at $ADDR (pid $DAEMON_PID)"
grep -qx "$DAEMON_PID" "$WORK/d.pid"

echo "== ping =="
"$TOOLS_DIR/finehmm_client" "$ADDR" --ping | grep -qx pong

echo "== remote search is bit-identical to a direct scan =="
"$EXAMPLES_DIR/hmmsearch_tool" --tblout "$WORK/local.tbl" \
  "$WORK/model.hmm" "$WORK/db.fsqdb" > /dev/null
"$TOOLS_DIR/finehmm_client" "$ADDR" --tblout "$WORK/remote.tbl" \
  "$WORK/model.hmm" > /dev/null
cmp "$WORK/local.tbl" "$WORK/remote.tbl" || {
  echo "finehmm_client tblout differs from the direct scan"; exit 1; }

echo "== hmmsearch_tool --connect routes through the daemon =="
"$EXAMPLES_DIR/hmmsearch_tool" --connect "$ADDR" \
  --tblout "$WORK/remote2.tbl" "$WORK/model.hmm" > /dev/null
cmp "$WORK/local.tbl" "$WORK/remote2.tbl" || {
  echo "hmmsearch_tool --connect tblout differs from the direct scan"; exit 1; }

echo "== STATS verb =="
"$TOOLS_DIR/finehmm_client" "$ADDR" --stats > "$WORK/stats.json"
grep -q "finehmm.server_stats.v1" "$WORK/stats.json"
grep -q '"db_sweeps"' "$WORK/stats.json"

echo "== closed-loop bench smoke =="
"$TOOLS_DIR/finehmm_client" "$ADDR" --bench 3 --clients 2 \
  "$WORK/model.hmm" | grep -q '"requests_per_sec"'

echo "== exit-code contract (0 ok / 2 bad args / 3 I/O failure) =="
rc=0; "$TOOLS_DIR/finehmm_client" --no-such-flag > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "bad args gave exit $rc, want 2"; exit 1; }
rc=0; "$TOOLS_DIR/finehmm_client" "$ADDR" "$WORK/missing.hmm" \
  > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || { echo "missing model file gave exit $rc, want 3"; exit 1; }
# Port 1 is never a finehmmd: connection refused is an I/O failure.
rc=0; "$TOOLS_DIR/finehmm_client" 127.0.0.1:1 --ping > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || { echo "refused connection gave exit $rc, want 3"; exit 1; }

echo "== SIGTERM drain =="
kill -TERM "$DAEMON_PID"
rc=0; wait "$DAEMON_PID" || rc=$?
DAEMON_PID=""
[ "$rc" -eq 0 ] || { echo "daemon exited $rc after SIGTERM, want 0";
  cat "$WORK/daemon.log"; exit 1; }
grep -q "finehmm.server_stats.v1" "$WORK/daemon.log" || {
  echo "drained daemon did not flush its stats"; cat "$WORK/daemon.log"; exit 1; }
grep -q "drained, bye" "$WORK/daemon.log"
[ ! -f "$WORK/d.pid" ] || { echo "pid file survived the drain"; exit 1; }

echo "ALL SERVER SMOKE TESTS PASSED"
