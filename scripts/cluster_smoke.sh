#!/usr/bin/env bash
# End-to-end smoke of the sharded finehmmd cluster over real TCP, wired
# into ctest and scripts/check.sh --cluster-smoke (docs/cluster.md).
#
# Builds a demo model and a packed database with the example tools,
# splits the database into two residue-balanced shards with fsqdb_shard,
# starts one finehmmd shard worker per shard file (announcing its shard
# role in the PONG handshake) and finehmm_clusterd in front of them,
# then proves the cluster contract: the coordinator's merged tblout is
# BYTE-IDENTICAL to a direct unsharded hmmsearch_tool scan of the source
# database, the STATS verb answers the finehmm.cluster_stats.v1 schema,
# /metrics exports the per-shard cluster families, and a SIGTERM drains
# coordinator and workers cleanly (stats flushed, pid files removed,
# exit 0 everywhere).
set -euo pipefail

TOOLS_DIR=${1:?usage: cluster_smoke.sh <tools-bin-dir> <examples-bin-dir>}
EXAMPLES_DIR=${2:?usage: cluster_smoke.sh <tools-bin-dir> <examples-bin-dir>}
WORK=$(mktemp -d)
WORKER0_PID=""
WORKER1_PID=""
COORD_PID=""
cleanup() {
  for pid in "$COORD_PID" "$WORKER0_PID" "$WORKER1_PID"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Scrape "<name>: listening on 127.0.0.1:PORT" from a daemon log once it
# appears (the daemons print the kernel-picked port before serving).
wait_port() { # <log> <pid> <pattern> -> port
  local log=$1 pid=$2 pattern=$3
  for _ in $(seq 1 100); do
    grep -q "$pattern" "$log" 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || {
      echo "daemon died during startup" >&2; cat "$log" >&2; exit 1; }
    sleep 0.1
  done
  sed -n "s/.*$pattern 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p" "$log" | head -n1
}

echo "== stage a model and a packed database =="
"$EXAMPLES_DIR/hmmbuild_tool" --demo "$WORK/model.hmm" > /dev/null
"$EXAMPLES_DIR/hmmemit_tool" "$WORK/model.hmm" 24 "$WORK/homologs.fasta"
"$EXAMPLES_DIR/seqconvert_tool" "$WORK/homologs.fasta" "$WORK/db.fsqdb"

echo "== shard the database (2 residue-balanced shards + manifest) =="
mkdir "$WORK/shards"
"$TOOLS_DIR/fsqdb_shard" --shards 2 --out "$WORK/shards" "$WORK/db.fsqdb" \
  > "$WORK/shard.log"
grep -q "wrote 2 shards" "$WORK/shard.log"
[ -f "$WORK/shards/shard.0.fsqdb" ]
[ -f "$WORK/shards/shard.1.fsqdb" ]
grep -q "finehmm.shard_manifest.v1" "$WORK/shards/shard.manifest.json"

echo "== start one finehmmd shard worker per shard file =="
"$TOOLS_DIR/finehmmd" --port 0 --threads 2 --shard-id 0 \
  "$WORK/shards/shard.0.fsqdb" > "$WORK/worker0.log" 2>&1 &
WORKER0_PID=$!
"$TOOLS_DIR/finehmmd" --port 0 --threads 2 --shard-id 1 \
  "$WORK/shards/shard.1.fsqdb" > "$WORK/worker1.log" 2>&1 &
WORKER1_PID=$!
PORT0=$(wait_port "$WORK/worker0.log" "$WORKER0_PID" "listening on")
PORT1=$(wait_port "$WORK/worker1.log" "$WORKER1_PID" "listening on")
[ -n "$PORT0" ] && [ -n "$PORT1" ] || {
  echo "no worker port scraped"; cat "$WORK"/worker*.log; exit 1; }
echo "shard workers at 127.0.0.1:$PORT0 and 127.0.0.1:$PORT1"

echo "== start finehmm_clusterd in front of them =="
"$TOOLS_DIR/finehmm_clusterd" --manifest "$WORK/shards/shard.manifest.json" \
  --shard "127.0.0.1:$PORT0" --shard "127.0.0.1:$PORT1" \
  --port 0 --metrics-port 0 --pid-file "$WORK/c.pid" \
  > "$WORK/coord.log" 2>&1 &
COORD_PID=$!
CPORT=$(wait_port "$WORK/coord.log" "$COORD_PID" "listening on")
[ -n "$CPORT" ] || { echo "no coordinator port"; cat "$WORK/coord.log"; exit 1; }
METRICS_PORT=$(wait_port "$WORK/coord.log" "$COORD_PID" "metrics on")
[ -n "$METRICS_PORT" ] || {
  echo "no metrics port"; cat "$WORK/coord.log"; exit 1; }
ADDR="127.0.0.1:$CPORT"
grep -q "2/2 shards answered the probe" "$WORK/coord.log" || {
  echo "coordinator probe did not reach both shards"
  cat "$WORK/coord.log"; exit 1; }
echo "coordinator at $ADDR, metrics at 127.0.0.1:$METRICS_PORT"
grep -qx "$COORD_PID" "$WORK/c.pid"

# Plain-python HTTP GET (no curl dependency in CI containers).
http_get() {
  python3 -c 'import sys, urllib.request
print(urllib.request.urlopen(sys.argv[1], timeout=10).read().decode(), end="")' \
    "http://127.0.0.1:$METRICS_PORT$1"
}

echo "== ping (coordinator answers the shared wire protocol) =="
"$TOOLS_DIR/finehmm_client" "$ADDR" --ping | grep -qx pong

echo "== merged scatter-gather search is byte-identical to unsharded =="
"$EXAMPLES_DIR/hmmsearch_tool" --tblout "$WORK/local.tbl" \
  "$WORK/model.hmm" "$WORK/db.fsqdb" > /dev/null
"$TOOLS_DIR/finehmm_client" "$ADDR" --tblout "$WORK/cluster.tbl" \
  "$WORK/model.hmm" > /dev/null 2> "$WORK/client.err"
cmp "$WORK/local.tbl" "$WORK/cluster.tbl" || {
  echo "coordinator tblout differs from the direct unsharded scan"
  diff "$WORK/local.tbl" "$WORK/cluster.tbl" || true; exit 1; }
grep -q "trace_id 0x" "$WORK/client.err" || {
  echo "coordinator reply carried no trace id"; cat "$WORK/client.err"; exit 1; }

echo "== hmmsearch_tool --connect routes through the coordinator =="
"$EXAMPLES_DIR/hmmsearch_tool" --connect "$ADDR" \
  --tblout "$WORK/cluster2.tbl" "$WORK/model.hmm" > /dev/null
cmp "$WORK/local.tbl" "$WORK/cluster2.tbl" || {
  echo "hmmsearch_tool --connect tblout differs from the direct scan"
  exit 1; }

echo "== STATS answers the cluster schema =="
"$TOOLS_DIR/finehmm_client" "$ADDR" --stats-json > "$WORK/stats.json"
grep -q "finehmm.cluster_stats.v1" "$WORK/stats.json"
grep -q '"merged_ok"' "$WORK/stats.json"
grep -q '"straggler"' "$WORK/stats.json"
grep -q '"shards"' "$WORK/stats.json"
python3 - "$WORK/stats.json" <<'PY'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["schema"] == "finehmm.cluster_stats.v1", s.get("schema")
assert s["shard_count"] == 2, s["shard_count"]
assert s["merged_ok"] >= 2, s["merged_ok"]
assert len(s["shards"]) == 2, s["shards"]
for shard in s["shards"]:
    assert shard["healthy"], shard
    assert shard["ok"] >= 2, shard
print("cluster stats: merged_ok", s["merged_ok"],
      "across", len(s["shards"]), "healthy shards")
PY

echo "== /metrics exports the cluster families =="
http_get /metrics > "$WORK/metrics.txt"
for want in "finehmm_cluster_up 1" \
            "finehmm_cluster_shards 2" \
            "finehmm_cluster_shards_healthy 2" \
            "finehmm_cluster_straggler_seconds" \
            'finehmm_cluster_shard_latency_seconds{shard="1"' \
            'finehmm_cluster_events_total{event="merged_ok"}'; do
  grep -qF "$want" "$WORK/metrics.txt" || {
    echo "missing from /metrics: $want"; cat "$WORK/metrics.txt"; exit 1; }
done
http_get /healthz | grep -qx "ok"
http_get /statusz | grep -q "finehmm_clusterd status"

echo "== SIGTERM drains the coordinator cleanly =="
kill -TERM "$COORD_PID"
rc=0; wait "$COORD_PID" || rc=$?
COORD_PID=""
[ "$rc" -eq 0 ] || { echo "coordinator exited $rc after SIGTERM, want 0"
  cat "$WORK/coord.log"; exit 1; }
grep -q "finehmm.cluster_stats.v1" "$WORK/coord.log" || {
  echo "drained coordinator did not flush its stats"
  cat "$WORK/coord.log"; exit 1; }
grep -q "drained, bye" "$WORK/coord.log"
[ ! -f "$WORK/c.pid" ] || { echo "pid file survived the drain"; exit 1; }

echo "== SIGTERM drains both shard workers cleanly =="
for pid_var in WORKER0_PID WORKER1_PID; do
  pid=${!pid_var}
  kill -TERM "$pid"
  rc=0; wait "$pid" || rc=$?
  [ "$rc" -eq 0 ] || { echo "worker exited $rc after SIGTERM, want 0"
    cat "$WORK"/worker*.log; exit 1; }
done
WORKER0_PID=""
WORKER1_PID=""
grep -q "drained, bye" "$WORK/worker0.log"
grep -q "drained, bye" "$WORK/worker1.log"

echo "ALL CLUSTER SMOKE TESTS PASSED"
