#!/usr/bin/env bash
# One-command verification: configure, build, and test via the CMake
# presets, plus the repo-invariant linter (tools/finehmm_lint).
#
# Usage: scripts/check.sh [MODE]
#   (none)        default Release build + tests, then the asan preset
#   --fast        default build + tests only
#   --lint        repo-invariant linter only (self-test + tree pass);
#                 needs no build tree, so CI can gate on it in seconds
#   --static      the full static-analysis tier, mirroring the CI matrix
#                 (docs/static_analysis.md): the linter, then — when the
#                 tools exist on PATH — a clang++ build of the clang
#                 preset (thread-safety analysis as errors), clang-tidy
#                 over compile_commands.json (result-cached), and
#                 cppcheck.  Missing tools are skipped with a notice, so
#                 the command is useful on a gcc-only box too
#   --preset P    one named preset only (default|asan|ubsan|tsan)
#   --server-smoke  build the default preset, then run only the daemon's
#                 TCP end-to-end smoke (scripts/server_smoke.sh)
#   --cluster-smoke  build the default preset, then run only the sharded
#                 cluster's TCP end-to-end smoke (scripts/cluster_smoke.sh:
#                 fsqdb_shard + 2 workers + finehmm_clusterd, merged tblout
#                 byte-identical to an unsharded scan)
#   --bench-diff  build the default preset, regenerate BENCH_throughput
#                 into the build tree, and diff it against the committed
#                 one (tools/bench_diff; BENCH_DIFF_THRESHOLD overrides
#                 the 10% regression gate)
#   --all         everything: lint, then default + asan + ubsan + tsan
#
# Every sanitizer preset builds into its own tree (build-asan/,
# build-ubsan/, build-tsan/) with FINEHMM_CHECKS=ON, so the DP/queue
# invariants are armed exactly where the sanitizers are watching.
set -euo pipefail

cd "$(dirname "$0")/.."

run() { echo "+ $*"; "$@"; }

lint() {
  run python3 tools/finehmm_lint --self-test
  run python3 tools/finehmm_lint
}

preset() {
  run cmake --preset "$1"
  run cmake --build --preset "$1" -j "$(nproc)"
  run ctest --preset "$1"
}

static_tier() {
  lint
  if command -v clang++ >/dev/null 2>&1; then
    # Build (not just syntax-check) so -Wthread-safety -Werror covers
    # every TU, and run the tests: the clang preset also registers the
    # negative-compile pair (test_thread_safety_violations, WILL_FAIL).
    preset clang
  else
    echo "check.sh: clang++ not found, skipping thread-safety build"
  fi
  if command -v clang-tidy >/dev/null 2>&1; then
    run python3 tools/finehmm_lint --clang-tidy
  else
    echo "check.sh: clang-tidy not found, skipping deep pass"
  fi
  if command -v cppcheck >/dev/null 2>&1; then
    run cppcheck --error-exitcode=1 --inline-suppr \
        --enable=warning,portability \
        --suppress=missingInclude --suppress=unusedFunction \
        --inconclusive --quiet -I src src
  else
    echo "check.sh: cppcheck not found, skipping"
  fi
}

case "${1:-}" in
  --fast)
    preset default
    ;;
  --lint)
    lint
    ;;
  --static)
    static_tier
    ;;
  --preset)
    [[ -n "${2:-}" ]] || { echo "check.sh: --preset needs a name" >&2; exit 2; }
    preset "$2"
    ;;
  --server-smoke)
    run cmake --preset default
    run cmake --build --preset default -j "$(nproc)"
    run bash scripts/server_smoke.sh build/tools build/examples
    ;;
  --cluster-smoke)
    run cmake --preset default
    run cmake --build --preset default -j "$(nproc)"
    run bash scripts/cluster_smoke.sh build/tools build/examples
    ;;
  --bench-diff)
    run cmake --preset default
    run cmake --build --preset default -j "$(nproc)"
    run build/bench/bench_throughput 0.001 400 build/BENCH_fresh.json
    run python3 tools/bench_diff build/BENCH_fresh.json \
        --threshold "${BENCH_DIFF_THRESHOLD:-0.10}"
    ;;
  --all)
    lint
    preset default
    preset asan
    preset ubsan
    preset tsan
    ;;
  "")
    preset default
    preset asan
    ;;
  *)
    echo "check.sh: unknown mode '$1'" \
         "(--fast|--lint|--static|--preset P|--server-smoke|--cluster-smoke|--bench-diff|--all)" >&2
    exit 2
    ;;
esac

echo "check.sh: all suites passed"
