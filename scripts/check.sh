#!/usr/bin/env bash
# One-command verification: configure, build, and run the full test suite
# (tier-1 + simd-labelled) under both the default Release build and the
# ASan+UBSan build, via the CMake presets.
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the ASan pass (default build + tests only)
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

run() { echo "+ $*"; "$@"; }

run cmake --preset default
run cmake --build --preset default -j "$(nproc)"
run ctest --preset default

if [[ "$fast" -eq 0 ]]; then
  run cmake --preset asan
  run cmake --build --preset asan -j "$(nproc)"
  run ctest --preset asan
fi

echo "check.sh: all suites passed"
