#!/usr/bin/env bash
# End-to-end smoke test of the command-line tools, wired into ctest.
# Exercises the full hmmbuild -> hmmstat -> hmmemit -> hmmsearch ->
# hmmalign round trip through real files.
set -euo pipefail

BIN_DIR=${1:?usage: smoke_tools.sh <examples-bin-dir>}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== hmmbuild_tool =="
"$BIN_DIR/hmmbuild_tool" --demo "$WORK/model.hmm"
grep -q "STATS LOCAL MSV" "$WORK/model.hmm"

echo "== hmmstat_tool =="
"$BIN_DIR/hmmstat_tool" "$WORK/model.hmm" | grep -q "match states"

echo "== hmmemit_tool =="
"$BIN_DIR/hmmemit_tool" "$WORK/model.hmm" 8 "$WORK/homologs.fasta"
grep -c '^>' "$WORK/homologs.fasta" | grep -qx 8

echo "== hmmsearch_tool (CPU) =="
"$BIN_DIR/hmmsearch_tool" "$WORK/model.hmm" "$WORK/homologs.fasta" \
  > "$WORK/cpu.out"
grep -q "hits 8" "$WORK/cpu.out" || {
  echo "expected all 8 emitted homologs to hit"; cat "$WORK/cpu.out"; exit 1;
}

echo "== hmmsearch_tool (GPU engine) =="
"$BIN_DIR/hmmsearch_tool" --gpu "$WORK/model.hmm" "$WORK/homologs.fasta" \
  > "$WORK/gpu.out"
# Identical hit counts from both engines.
cpu_hits=$(grep -o "hits [0-9]*" "$WORK/cpu.out")
gpu_hits=$(grep -o "hits [0-9]*" "$WORK/gpu.out")
[ "$cpu_hits" = "$gpu_hits" ]

echo "== hmmsearch_tool --ali =="
"$BIN_DIR/hmmsearch_tool" --ali "$WORK/model.hmm" "$WORK/homologs.fasta" \
  | grep -q "model"

echo "== hmmalign_tool =="
"$BIN_DIR/hmmalign_tool" "$WORK/model.hmm" "$WORK/homologs.fasta" \
  "$WORK/aligned.afa"
grep -c '^>' "$WORK/aligned.afa" | grep -qx 8

echo "== hmmpress_tool / hmmscan_tool =="
"$BIN_DIR/hmmpress_tool" "$WORK/lib.fhpdb" "$WORK/model.hmm"
"$BIN_DIR/hmmscan_tool" "$WORK/lib.fhpdb" "$WORK/homologs.fasta" \
  > "$WORK/scan.out"
# Every emitted homolog should be annotated with the pressed model.
[ "$(grep -c demo_motif "$WORK/scan.out")" -ge 8 ] || {
  echo "hmmscan failed to annotate homologs"; cat "$WORK/scan.out"; exit 1;
}

echo "== seqconvert_tool round trip =="
"$BIN_DIR/seqconvert_tool" "$WORK/homologs.fasta" "$WORK/homologs.fsqdb"
"$BIN_DIR/seqconvert_tool" "$WORK/homologs.fsqdb" "$WORK/back.fasta"
cmp -s <(grep -v '^>' "$WORK/homologs.fasta" | tr -d '\n') \
       <(grep -v '^>' "$WORK/back.fasta" | tr -d '\n')
# hmmsearch straight from the packed database.
"$BIN_DIR/hmmsearch_tool" "$WORK/model.hmm" "$WORK/homologs.fsqdb" \
  | grep -q "hits 8"

echo "== hmmsim_tool (Gumbel hypothesis must not be rejected) =="
"$BIN_DIR/hmmsim_tool" "$WORK/model.hmm" 300 > /dev/null

echo "== tblout / domains =="
"$BIN_DIR/hmmsearch_tool" --domains --tblout "$WORK/hits.tbl" \
  "$WORK/model.hmm" "$WORK/homologs.fasta" > /dev/null
[ "$(grep -cv '^#' "$WORK/hits.tbl")" -eq 8 ]

echo "== quickstart / pfam_scan / gpu_speedup_demo =="
"$BIN_DIR/quickstart" > /dev/null
"$BIN_DIR/pfam_scan" 3 120 > /dev/null
"$BIN_DIR/gpu_speedup_demo" 100 > /dev/null

echo "== exit-code contract: 2 = bad arguments, 3 = I/O failure =="
# The tools share examples/tool_exit.hpp: argument mistakes and I/O
# failures must be distinguishable to scripts without parsing stderr.
expect_rc() {
  local want=$1; shift
  local rc=0
  "$@" > /dev/null 2>&1 || rc=$?
  [ "$rc" -eq "$want" ] || {
    echo "FAIL: '$*' exited $rc, want $want"; exit 1; }
}
expect_rc 2 "$BIN_DIR/hmmsearch_tool"                       # no arguments
expect_rc 2 "$BIN_DIR/hmmsearch_tool" --no-such-flag x y    # unknown flag
expect_rc 2 "$BIN_DIR/hmmbuild_tool"                        # no arguments
expect_rc 2 "$BIN_DIR/hmmemit_tool"                         # no arguments
expect_rc 2 "$BIN_DIR/hmmscan_tool" --bogus a b             # unknown flag
expect_rc 3 "$BIN_DIR/hmmsearch_tool" "$WORK/absent.hmm" \
  "$WORK/homologs.fasta"                                    # missing model
expect_rc 3 "$BIN_DIR/hmmsearch_tool" "$WORK/model.hmm" \
  "$WORK/absent.fasta"                                      # missing database
expect_rc 3 "$BIN_DIR/hmmstat_tool" "$WORK/absent.hmm"      # missing model
expect_rc 3 "$BIN_DIR/hmmalign_tool" "$WORK/model.hmm" \
  "$WORK/absent.fasta" "$WORK/out.afa"                      # missing input
expect_rc 3 "$BIN_DIR/seqconvert_tool" "$WORK/absent.fasta" \
  "$WORK/out.fsqdb"                                         # missing input

echo "ALL TOOL SMOKE TESTS PASSED"
