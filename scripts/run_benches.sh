#!/usr/bin/env bash
# Run every figure/ablation bench and the micro suite, teeing the output.
# Usage: run_benches.sh <bench-bin-dir> [cells-budget]
set -euo pipefail

BIN_DIR=${1:?usage: run_benches.sh <bench-bin-dir> [cells]}
export FINEHMM_BENCH_CELLS=${2:-8e6}

for b in "$BIN_DIR"/fig* "$BIN_DIR"/ablation_* "$BIN_DIR"/projection_* \
         "$BIN_DIR"/report_* "$BIN_DIR"/validate_* "$BIN_DIR"/pfam_dist*; do
  echo
  echo "############ $(basename "$b") ############"
  "$b"
done

echo
echo "############ micro_kernels ############"
"$BIN_DIR/micro_kernels" --benchmark_min_time=0.05
