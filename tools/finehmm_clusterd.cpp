// finehmm_clusterd — the scatter-gather cluster coordinator
// (docs/cluster.md).
//
// Usage:
//   finehmm_clusterd --manifest <shard.manifest.json>
//                    --shard host:port --shard host:port ... [options]
//
// One --shard per manifest entry, in manifest order: shard k of the
// manifest is served by the k-th --shard address.  To clients the
// coordinator speaks the ordinary finehmmd protocol on --host:--port;
// every SEARCH/SCAN fans out over all shards and the merged reply is
// bit-identical to an unsharded scan of the source database.
//
// Options:
//   --host <addr>       IPv4 address to bind (default 127.0.0.1)
//   --port <n>          TCP port; 0 = kernel-picked (default 0).  Printed
//                       as "finehmm_clusterd: listening on HOST:PORT".
//   --metrics-port <n>  serve HTTP /metrics, /healthz, /statusz (0 =
//                       ephemeral; printed).  Omit to disable.
//   --no-degraded       fail requests when a shard is unreachable instead
//                       of serving a flagged partial merge
//   --retries <n>       connect attempts per shard leg beyond the first
//                       (default 2; backoff doubles from 5 ms)
//   --pid-file <f>      write the pid to f (removed on clean exit)
//   --log <level>       structured JSON log level on stderr (default info)
//
// SIGTERM/SIGINT drains gracefully: stop accepting, finish in-flight
// scatters, then exit 0 after printing the final cluster stats JSON.
// Exit codes follow examples/tool_exit.hpp.
#include <pthread.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.hpp"
#include "obs/log.hpp"
#include "server/http.hpp"
#include "server/tcp.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: finehmm_clusterd --manifest m.json --shard host:port "
               "... [--host addr]\n"
               "                        [--port n] [--metrics-port n] "
               "[--no-degraded]\n"
               "                        [--retries n] [--pid-file f] "
               "[--log level]\n");
}

struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

bool parse_host_port(const std::string& s, HostPort& out) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size())
    return false;
  out.host = s.substr(0, colon);
  const long port = std::atol(s.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  bool metrics = false;
  std::uint16_t metrics_port = 0;
  std::string log_level = "info";
  std::string pid_file;
  std::string manifest_path;
  std::vector<HostPort> shard_addrs;
  cluster::ClusterConfig cfg;
  cfg.require_shard_role = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (arg == "--shard" && i + 1 < argc) {
      HostPort hp;
      if (!parse_host_port(argv[++i], hp)) {
        std::fprintf(stderr, "finehmm_clusterd: bad --shard '%s'\n", argv[i]);
        return tools::kBadArgs;
      }
      shard_addrs.push_back(hp);
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--metrics-port" && i + 1 < argc) {
      metrics = true;
      metrics_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--no-degraded") {
      cfg.allow_degraded = false;
    } else if (arg == "--retries" && i + 1 < argc) {
      cfg.connect_retries = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--pid-file" && i + 1 < argc) {
      pid_file = argv[++i];
    } else if (arg == "--log" && i + 1 < argc) {
      log_level = argv[++i];
    } else {
      usage();
      return tools::kBadArgs;
    }
  }
  if (manifest_path.empty() || shard_addrs.empty()) {
    usage();
    return tools::kBadArgs;
  }

  // Same signal discipline as finehmmd: block SIGTERM/SIGINT everywhere
  // before any thread exists so only the watcher sees them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  obs::set_log_level(obs::parse_log_level(log_level));

  try {
    cfg.manifest = cluster::read_manifest_file(manifest_path);
    if (shard_addrs.size() != cfg.manifest.shards.size()) {
      std::fprintf(stderr,
                   "finehmm_clusterd: manifest has %zu shards but %zu "
                   "--shard addresses given\n",
                   cfg.manifest.shards.size(), shard_addrs.size());
      return tools::kBadArgs;
    }

    auto addrs = shard_addrs;  // owned copy for the connect closure
    cluster::ClusterCoordinator coord(
        std::move(cfg), [addrs](std::size_t shard) {
          return server::tcp_connect(addrs[shard].host, addrs[shard].port);
        });

    const std::size_t up = coord.client().probe_all();
    std::printf("finehmm_clusterd: %zu/%zu shards answered the probe\n", up,
                coord.client().shard_count());
    if (up == 0)
      std::fprintf(stderr,
                   "finehmm_clusterd: warning: no shard reachable yet; "
                   "serving anyway (requests will fail until shards come "
                   "up)\n");

    server::TcpListener listener(host, port);
    std::printf("finehmm_clusterd: listening on %s:%u\n", host.c_str(),
                listener.port());

    std::unique_ptr<server::HttpEndpoint> endpoint;
    if (metrics) {
      auto http_listener =
          std::make_unique<server::TcpListener>(host, metrics_port);
      std::printf("finehmm_clusterd: metrics on %s:%u\n", host.c_str(),
                  http_listener->port());
      endpoint = std::make_unique<server::HttpEndpoint>(
          std::move(http_listener), [&coord](const std::string& path) {
            return coord.handle_http(path);
          });
    }
    std::fflush(stdout);  // scripts scrape the lines while we serve

    obs::log(obs::LogLevel::kInfo, "cluster.start",
             {{"host", host},
              {"port", static_cast<std::uint64_t>(listener.port())},
              {"shards",
               static_cast<std::uint64_t>(coord.client().shard_count())},
              {"shards_up", static_cast<std::uint64_t>(up)}});

    if (!pid_file.empty()) {
      std::ofstream pf(pid_file);
      if (!pf.good()) throw IoError("cannot open pid file: " + pid_file);
      pf << ::getpid() << "\n";
    }

    std::thread watcher([&sigs, &coord] {
      int sig = 0;
      sigwait(&sigs, &sig);
      std::fprintf(stderr, "finehmm_clusterd: signal %d, draining\n", sig);
      coord.begin_drain();
    });

    coord.serve(listener);  // returns once drained and joined
    watcher.join();
    if (endpoint) endpoint->stop();
    obs::log(obs::LogLevel::kInfo, "cluster.stop",
             {{"uptime_seconds", coord.uptime_seconds()}});

    std::cout << coord.stats_json();
    if (!pid_file.empty()) std::remove(pid_file.c_str());
    std::printf("finehmm_clusterd: drained, bye\n");
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return tools::kOk;
}
