// fsqdb_shard — split one .fsqdb into N shard files plus a manifest
// (docs/cluster.md).
//
// Usage:
//   fsqdb_shard --shards <n> --out <dir> [--prefix name] <db.fsqdb>
//
// Shards are contiguous index ranges balanced by total residues (the
// cell-accurate load measure: sweep cost is ~M*L per sequence), planned
// by cluster::plan_shard_ranges with integer arithmetic only, so the
// same input always yields the same split on every host.  The manifest
// ("finehmm.shard_manifest.v1") records each shard's global seq_base,
// counts, and a length-bucket histogram; shard paths in the manifest are
// relative to the manifest file, so the whole directory is relocatable.
//
// Exit codes follow examples/tool_exit.hpp.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bio/seq_db_io.hpp"
#include "bio/sequence.hpp"
#include "cluster/shard_map.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: fsqdb_shard --shards n --out dir [--prefix name] "
               "<db.fsqdb>\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_shards = 0;
  std::string out_dir;
  std::string prefix = "shard";
  std::string db_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      n_shards = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--prefix" && i + 1 < argc) {
      prefix = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return tools::kBadArgs;
    } else if (db_path.empty()) {
      db_path = arg;
    } else {
      usage();
      return tools::kBadArgs;
    }
  }
  if (n_shards == 0 || out_dir.empty() || db_path.empty()) {
    usage();
    return tools::kBadArgs;
  }

  try {
    const bio::SequenceDatabase db = bio::read_seq_db_file(db_path);
    std::vector<std::uint32_t> lengths;
    lengths.reserve(db.size());
    for (const bio::Sequence& s : db)
      lengths.push_back(static_cast<std::uint32_t>(s.length()));

    const auto ranges = cluster::plan_shard_ranges(lengths, n_shards);

    cluster::ShardManifest manifest;
    manifest.source = db_path;
    manifest.total_sequences = db.size();
    manifest.total_residues = db.total_residues();

    for (std::size_t k = 0; k < ranges.size(); ++k) {
      const auto [begin, end] = ranges[k];
      bio::SequenceDatabase shard_db;
      shard_db.reserve(end - begin);
      cluster::ShardInfo info;
      info.path = prefix + "." + std::to_string(k) + ".fsqdb";
      info.seq_base = begin;
      info.sequences = end - begin;
      info.length_buckets.assign(cluster::kLengthBuckets, 0);
      for (std::size_t i = begin; i < end; ++i) {
        info.residues += db[i].length();
        ++info.length_buckets[cluster::length_bucket(db[i].length())];
        shard_db.add(db[i]);
      }
      bio::write_seq_db_file(out_dir + "/" + info.path, shard_db);
      std::printf("fsqdb_shard: %s  seqs=[%zu,%zu)  residues=%llu\n",
                  info.path.c_str(), begin, end,
                  static_cast<unsigned long long>(info.residues));
      manifest.shards.push_back(std::move(info));
    }

    const std::string manifest_path = out_dir + "/" + prefix + ".manifest.json";
    {
      std::ofstream out(manifest_path, std::ios::binary);
      if (!out) throw IoError("cannot open manifest for write: " +
                              manifest_path);
      out << cluster::write_manifest(manifest);
      if (!out.good()) throw IoError("failed writing manifest: " +
                                     manifest_path);
    }
    std::printf("fsqdb_shard: wrote %zu shards + %s (%llu sequences, %llu "
                "residues)\n",
                ranges.size(), manifest_path.c_str(),
                static_cast<unsigned long long>(manifest.total_sequences),
                static_cast<unsigned long long>(manifest.total_residues));
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return tools::kOk;
}
