// finehmm_client — query and probe a running finehmmd (docs/server.md).
//
// Usage:
//   finehmm_client HOST:PORT [options] [<model.hmm>]
//
// Options:
//   --db <n>         resident database id to search (default 0)
//   -E <evalue>      report threshold (default 10.0)
//   --deadline <ms>  per-request deadline; the daemon sheds the request
//                    with an error if it sits queued past it (default:
//                    none)
//   --tblout <f>     write the machine-readable target table to f
//   --ping           health-check the daemon and exit
//   --stats          fetch the daemon's STATS and pretty-print the
//                    latency histogram quantiles and coalescing/fuse
//                    counters
//   --stats-json     fetch the daemon's STATS and print the raw
//                    machine-readable JSON ("finehmm.server_stats.v2")
//   --bench <n>      closed-loop benchmark: each client sends n requests
//                    back to back; prints throughput and latency
//                    percentiles instead of a report
//   --clients <k>    concurrent connections for --bench (default 1)
//
// A model is required for searches and --bench; --ping/--stats need none.
// Exit codes follow examples/tool_exit.hpp.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hmm/hmm_io.hpp"
#include "obs/request_trace.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/report.hpp"
#include "server/client.hpp"
#include "server/tcp.hpp"
#include "tool_exit.hpp"
#include "util/timer.hpp"

using namespace finehmm;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: finehmm_client HOST:PORT [--db n] [-E evalue] "
               "[--deadline ms] [--tblout f]\n"
               "                      [--ping] [--stats] [--stats-json] "
               "[--bench n [--clients k]]\n"
               "                      [<model.hmm>]\n");
}

bool parse_hostport(const std::string& arg, std::string& host,
                    std::uint16_t& port) {
  const std::size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= arg.size())
    return false;
  host = arg.substr(0, colon);
  const long p = std::atol(arg.c_str() + colon + 1);
  if (p < 1 || p > 65535) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] + (sorted_ms[hi] - sorted_ms[lo]) * frac;
}

/// Closed-loop bench: k clients, each its own connection, each firing
/// `per_client` requests back to back.  Reports aggregate throughput
/// (guarded by obs::safe_rate) and the latency distribution.
int run_bench(const std::string& host, std::uint16_t port,
              std::uint32_t db_id, const hmm::Plan7Hmm& model,
              const stats::ModelStats* model_stats, double evalue,
              std::uint32_t deadline_ms, std::size_t per_client,
              std::size_t clients) {
  std::vector<std::vector<double>> lat_ms(clients);
  std::vector<std::size_t> failures(clients, 0);
  std::vector<std::thread> threads;
  Timer wall;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        server::BlockingClient client(server::tcp_connect(host, port));
        lat_ms[c].reserve(per_client);
        for (std::size_t i = 0; i < per_client; ++i) {
          Timer t;
          const server::RemoteResult rr =
              client.search(db_id, model, model_stats, evalue, deadline_ms);
          if (rr.status == server::ClientStatus::kOk)
            lat_ms[c].push_back(t.seconds() * 1e3);
          else
            ++failures[c];
        }
      } catch (const std::exception&) {
        failures[c] += per_client - lat_ms[c].size();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.seconds();

  std::vector<double> all;
  std::size_t failed = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    all.insert(all.end(), lat_ms[c].begin(), lat_ms[c].end());
    failed += failures[c];
  }
  std::sort(all.begin(), all.end());

  std::printf("{\n");
  std::printf("  \"clients\": %zu,\n", clients);
  std::printf("  \"requests_per_client\": %zu,\n", per_client);
  std::printf("  \"completed\": %zu,\n", all.size());
  std::printf("  \"failed\": %zu,\n", failed);
  std::printf("  \"wall_seconds\": %.6f,\n", wall_s);
  std::printf("  \"requests_per_sec\": %.3f,\n",
              obs::safe_rate(static_cast<double>(all.size()), wall_s));
  std::printf("  \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, "
              "\"p99\": %.3f, \"max\": %.3f}\n",
              percentile(all, 50), percentile(all, 95), percentile(all, 99),
              all.empty() ? 0.0 : all.back());
  std::printf("}\n");
  return failed == 0 ? tools::kOk : tools::kFailure;
}

// --- Tiny extractors for the daemon's stats JSON ------------------------
// The v2 schema is machine-first; the pretty printer only needs a few
// scalar fields, so a string scan beats hauling in a JSON parser.

/// First `"key": <number>` at or after `from`; NaN when absent.
double find_number(const std::string& json, const std::string& key,
                   std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle, from);
  if (at == std::string::npos) return std::nan("");
  return std::atof(json.c_str() + at + needle.size());
}

/// The `{...}` object following `"key":`, or empty when absent.  Good
/// enough for the latency objects, which nest no further braces.
std::string find_object(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  std::size_t at = json.find(needle);
  if (at == std::string::npos) return {};
  at = json.find('{', at + needle.size());
  if (at == std::string::npos) return {};
  const std::size_t end = json.find('}', at);
  if (end == std::string::npos) return {};
  return json.substr(at, end - at + 1);
}

void print_latency_line(const std::string& stats, const char* key,
                        const char* label) {
  const std::string h = find_object(stats, key);
  std::printf("  latency %-11s p50 %8.3f  p90 %8.3f  p99 %8.3f  "
              "p99.9 %8.3f ms  (n=%.0f)\n",
              label, find_number(h, "p50_seconds") * 1e3,
              find_number(h, "p90_seconds") * 1e3,
              find_number(h, "p99_seconds") * 1e3,
              find_number(h, "p999_seconds") * 1e3,
              find_number(h, "count"));
}

void print_stats_pretty(const std::string& stats) {
  std::printf("finehmmd stats (schema finehmm.server_stats.v2)\n");
  std::printf("  uptime:             %.1f s\n",
              find_number(stats, "uptime_seconds"));
  std::printf("  queue depth:        %.0f\n",
              find_number(stats, "queue_depth"));
  std::printf("  requests:           admitted %.0f, completed %.0f, "
              "shed %.0f, failed %.0f\n",
              find_number(stats, "requests_admitted"),
              find_number(stats, "requests_completed"),
              find_number(stats, "requests_overloaded"),
              find_number(stats, "requests_failed"));
  const double completed = find_number(stats, "requests_completed");
  const double sweeps = find_number(stats, "db_sweeps") +
                        find_number(stats, "scan_sweeps");
  std::printf("  coalescing:         %.0f batches, %.0f sweeps, "
              "%.2f requests/sweep, max batch %.0f\n",
              find_number(stats, "batches"), sweeps,
              obs::safe_rate(completed, sweeps),
              find_number(stats, "max_batch_size"));
  std::printf("  scan (fused):       %.0f requests, %.0f sweeps, "
              "%.0f models scored, %.0f fuse groups, lane occupancy "
              "%.3f\n",
              find_number(stats, "scan_requests"),
              find_number(stats, "scan_sweeps"),
              find_number(stats, "scan_models_scored"),
              find_number(stats, "scan_fuse_groups"),
              find_number(stats, "scan_lane_occupancy"));
  print_latency_line(stats, "e2e", "e2e:");
  print_latency_line(stats, "queue_wait", "queue:");
  print_latency_line(stats, "sweep", "sweep:");
}

}  // namespace

int main(int argc, char** argv) {
  std::string hostport, hmm_path, tblout_path;
  std::uint32_t db_id = 0;
  double evalue = 10.0;
  std::uint32_t deadline_ms = 0;
  bool do_ping = false, do_stats = false, do_stats_json = false;
  std::size_t bench_n = 0, bench_clients = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--db" && i + 1 < argc) {
      db_id = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else if (arg == "-E" && i + 1 < argc) {
      evalue = std::atof(argv[++i]);
    } else if (arg == "--deadline" && i + 1 < argc) {
      deadline_ms = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else if (arg == "--tblout" && i + 1 < argc) {
      tblout_path = argv[++i];
    } else if (arg == "--ping") {
      do_ping = true;
    } else if (arg == "--stats") {
      do_stats = true;
    } else if (arg == "--stats-json") {
      do_stats_json = true;
    } else if (arg == "--bench" && i + 1 < argc) {
      bench_n = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--clients" && i + 1 < argc) {
      bench_clients = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return tools::kBadArgs;
    } else if (hostport.empty()) {
      hostport = arg;
    } else if (hmm_path.empty()) {
      hmm_path = arg;
    } else {
      usage();
      return tools::kBadArgs;
    }
  }

  std::string host;
  std::uint16_t port = 0;
  if (hostport.empty() || !parse_hostport(hostport, host, port)) {
    usage();
    return tools::kBadArgs;
  }
  const bool needs_model =
      bench_n > 0 || (!do_ping && !do_stats && !do_stats_json);
  if (needs_model && hmm_path.empty()) {
    usage();
    return tools::kBadArgs;
  }
  if (bench_clients == 0) bench_clients = 1;

  try {
    std::optional<stats::ModelStats> file_stats;
    hmm::Plan7Hmm model;
    if (needs_model) model = hmm::read_hmm_file(hmm_path, &file_stats);

    if (bench_n > 0)
      return run_bench(host, port, db_id, model,
                       file_stats ? &*file_stats : nullptr, evalue,
                       deadline_ms, bench_n, bench_clients);

    server::BlockingClient client(server::tcp_connect(host, port));

    if (do_ping) {
      if (!client.ping()) throw IoError("daemon did not answer PING");
      std::printf("pong\n");
    }
    if (do_stats || do_stats_json) {
      const std::optional<std::string> json = client.stats_json();
      if (!json) throw IoError("daemon did not answer STATS");
      if (do_stats_json)
        std::fputs(json->c_str(), stdout);
      else
        print_stats_pretty(*json);
    }
    if (do_ping || do_stats || do_stats_json) return tools::kOk;

    const server::RemoteResult rr = client.search(
        db_id, model, file_stats ? &*file_stats : nullptr, evalue,
        deadline_ms);
    switch (rr.status) {
      case server::ClientStatus::kOk:
        break;
      case server::ClientStatus::kError:
        std::fprintf(stderr, "error: daemon refused the search: %s\n",
                     rr.error.message.c_str());
        return tools::kFailure;
      case server::ClientStatus::kOverloaded:
        std::fprintf(stderr,
                     "error: daemon overloaded (admission queue of %u "
                     "full); retry later\n",
                     rr.overload.queue_capacity);
        return tools::kFailure;
      case server::ClientStatus::kDisconnected:
        throw IoError("connection to " + hostport + " died mid-request");
    }

    // The daemon's trace id for this request, on stderr so report/tblout
    // stay byte-identical to a local run; quote it when asking the
    // operator where the time went (STATS recent_traces keys on it).
    std::fprintf(stderr, "trace_id %s\n",
                 obs::trace_id_hex(rr.result.trace_id).c_str());

    pipeline::SearchResult result;
    result.hits = rr.result.hits;
    result.ssv = rr.result.ssv;
    result.msv = rr.result.msv;
    result.vit = rr.result.vit;
    result.fwd = rr.result.fwd;
    const hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
    const pipeline::DbSummary summary{rr.result.db_sequences,
                                      rr.result.db_residues};
    pipeline::write_report(std::cout, result, prof, summary);
    if (!tblout_path.empty()) {
      std::ofstream tbl(tblout_path);
      if (!tbl.good())
        throw IoError("cannot open tblout file: " + tblout_path);
      pipeline::write_tblout(tbl, result, prof, summary);
    }
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return tools::kOk;
}
