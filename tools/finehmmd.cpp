// finehmmd — the resident search daemon (docs/server.md).
//
// Usage:
//   finehmmd [options] <db.fsqdb> [<db2.fsqdb> ...]
//
// Options:
//   --host <addr>    IPv4 address to bind (default 127.0.0.1)
//   --port <n>       TCP port; 0 lets the kernel pick (default 0).  The
//                    bound port is printed as "finehmmd: listening on
//                    HOST:PORT" either way, so scripts can scrape it.
//   --threads <n>    scan-pool workers (default: hardware concurrency)
//   --queue <n>      admission queue capacity (default 64)
//   --max-batch <n>  most requests per coalesced sweep (default 16)
//   --window-ms <n>  coalesce gather window in milliseconds (default 2)
//   --models <f>     load a pressed model library (.fhpdb); repeatable
//   --shard-id <n>   announce role "shard" with this id in the PONG
//                    handshake (the daemon serves shard n of a sharded
//                    database; docs/cluster.md).  Coordinators started
//                    with require_shard_role refuse workers without it.
//   --pid-file <f>   write the daemon pid to f (removed on clean exit)
//   --metrics-port <n>  serve HTTP /metrics, /healthz, /statusz on this
//                    port (0 = ephemeral; printed as "finehmmd: metrics
//                    on HOST:PORT").  Omit to disable the endpoint.
//   --slow-ms <n>    log a per-stage breakdown (warn, rate-limited) for
//                    any request slower than n milliseconds end to end
//   --log <level>    structured JSON log level on stderr:
//                    debug|info|warn|error|off (default info;
//                    FINEHMM_LOG overrides)
//
// Databases are mmap-resident for the process lifetime; clients name
// them by load order (db_id 0, 1, ...).  SIGTERM or SIGINT starts a
// graceful drain: stop accepting, finish every admitted request, then
// exit 0 after printing the final server stats JSON to stdout.
//
// Exit codes follow examples/tool_exit.hpp.
#include <pthread.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "server/http.hpp"
#include "server/server.hpp"
#include "server/tcp.hpp"
#include "tool_exit.hpp"

using namespace finehmm;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: finehmmd [--host addr] [--port n] [--threads n] "
               "[--queue n] [--max-batch n]\n"
               "                [--window-ms n] [--models lib.fhpdb]... "
               "[--shard-id n] [--pid-file f]\n"
               "                [--metrics-port n] [--slow-ms n] "
               "[--log level] <db.fsqdb>...\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  bool metrics = false;
  std::uint16_t metrics_port = 0;
  std::string log_level = "info";
  std::string pid_file;
  std::vector<std::string> db_paths;
  std::vector<std::string> model_paths;
  server::ServerConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      cfg.scan_threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--queue" && i + 1 < argc) {
      cfg.admission_capacity = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-batch" && i + 1 < argc) {
      cfg.max_batch = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--window-ms" && i + 1 < argc) {
      cfg.coalesce_window_ms = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--models" && i + 1 < argc) {
      model_paths.push_back(argv[++i]);
    } else if (arg == "--shard-id" && i + 1 < argc) {
      cfg.role = server::NodeRole::kShard;
      cfg.shard_id = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--pid-file" && i + 1 < argc) {
      pid_file = argv[++i];
    } else if (arg == "--metrics-port" && i + 1 < argc) {
      metrics = true;
      metrics_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--slow-ms" && i + 1 < argc) {
      cfg.slow_request_seconds = std::atof(argv[++i]) * 1e-3;
    } else if (arg == "--log" && i + 1 < argc) {
      log_level = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return tools::kBadArgs;
    } else {
      db_paths.push_back(arg);
    }
  }
  if (db_paths.empty()) {
    usage();
    return tools::kBadArgs;
  }

  // Block the shutdown signals in EVERY thread before ANY thread exists
  // (the scan pool spawns inside the SearchServer constructor; the mask
  // inherits), so only the dedicated watcher ever sees them —
  // begin_drain then runs in normal thread context, no
  // async-signal-safety contortions.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  // The library defaults to silent; the daemon is a long-running service
  // and speaks structured JSON on stderr (FINEHMM_LOG still overrides).
  obs::set_log_level(obs::parse_log_level(log_level));

  try {
    server::SearchServer srv(cfg);
    for (const std::string& path : db_paths) {
      const std::uint32_t id = srv.add_database(path);
      std::printf("finehmmd: db %u = %s\n", id, path.c_str());
    }
    for (const std::string& path : model_paths) {
      const std::size_t n = srv.add_model_library(path);
      std::printf("finehmmd: loaded %zu pressed models from %s\n", n,
                  path.c_str());
    }

    server::TcpListener listener(host, port);
    std::printf("finehmmd: listening on %s:%u\n", host.c_str(),
                listener.port());

    // The observability endpoint rides a second listener + its own
    // thread; scrapes never touch the search data plane.
    std::unique_ptr<server::HttpEndpoint> endpoint;
    if (metrics) {
      auto http_listener =
          std::make_unique<server::TcpListener>(host, metrics_port);
      std::printf("finehmmd: metrics on %s:%u\n", host.c_str(),
                  http_listener->port());
      endpoint = std::make_unique<server::HttpEndpoint>(
          std::move(http_listener),
          [&srv](const std::string& path) { return srv.handle_http(path); });
    }
    std::fflush(stdout);  // scripts scrape the lines while we serve

    obs::log(obs::LogLevel::kInfo, "server.start",
             {{"host", host},
              {"port", static_cast<std::uint64_t>(listener.port())},
              {"databases", static_cast<std::uint64_t>(srv.database_count())},
              {"models", static_cast<std::uint64_t>(srv.model_count())}});

    if (!pid_file.empty()) {
      std::ofstream pf(pid_file);
      if (!pf.good()) throw IoError("cannot open pid file: " + pid_file);
      pf << ::getpid() << "\n";
    }

    std::thread watcher([&sigs, &srv] {
      int sig = 0;
      sigwait(&sigs, &sig);
      std::fprintf(stderr, "finehmmd: signal %d, draining\n", sig);
      srv.begin_drain();
    });

    srv.serve(listener);  // returns once drained and joined
    watcher.join();
    // Keep /healthz answering 503 "draining" while in-flight requests
    // finish; stop only after the data plane has fully drained.
    if (endpoint) endpoint->stop();
    obs::log(obs::LogLevel::kInfo, "server.stop",
             {{"uptime_seconds", srv.uptime_seconds()}});

    // Flush telemetry: the final stats snapshot is the daemon's last
    // stdout output, so a supervisor's log ends with the full accounting.
    std::cout << srv.stats_json();
    if (!pid_file.empty()) std::remove(pid_file.c_str());
    std::printf("finehmmd: drained, bye\n");
  } catch (const std::exception& e) {
    return tools::report_exception(e);
  }
  return tools::kOk;
}
