# Empty compiler generated dependencies file for projection_maxwell.
# This may be replaced when dependencies are built.
