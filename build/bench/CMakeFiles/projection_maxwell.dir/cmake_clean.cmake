file(REMOVE_RECURSE
  "CMakeFiles/projection_maxwell.dir/projection_maxwell.cpp.o"
  "CMakeFiles/projection_maxwell.dir/projection_maxwell.cpp.o.d"
  "projection_maxwell"
  "projection_maxwell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_maxwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
