# Empty dependencies file for fig11_multigpu_fermi.
# This may be replaced when dependencies are built.
