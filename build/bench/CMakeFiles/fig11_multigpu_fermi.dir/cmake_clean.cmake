file(REMOVE_RECURSE
  "CMakeFiles/fig11_multigpu_fermi.dir/fig11_multigpu_fermi.cpp.o"
  "CMakeFiles/fig11_multigpu_fermi.dir/fig11_multigpu_fermi.cpp.o.d"
  "fig11_multigpu_fermi"
  "fig11_multigpu_fermi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_multigpu_fermi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
