# Empty compiler generated dependencies file for validate_roc.
# This may be replaced when dependencies are built.
