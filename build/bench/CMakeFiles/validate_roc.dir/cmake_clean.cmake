file(REMOVE_RECURSE
  "CMakeFiles/validate_roc.dir/validate_roc.cpp.o"
  "CMakeFiles/validate_roc.dir/validate_roc.cpp.o.d"
  "validate_roc"
  "validate_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
