file(REMOVE_RECURSE
  "CMakeFiles/fig9_stage_speedup.dir/fig9_stage_speedup.cpp.o"
  "CMakeFiles/fig9_stage_speedup.dir/fig9_stage_speedup.cpp.o.d"
  "fig9_stage_speedup"
  "fig9_stage_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_stage_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
