# Empty dependencies file for validate_accuracy.
# This may be replaced when dependencies are built.
