file(REMOVE_RECURSE
  "CMakeFiles/validate_accuracy.dir/validate_accuracy.cpp.o"
  "CMakeFiles/validate_accuracy.dir/validate_accuracy.cpp.o.d"
  "validate_accuracy"
  "validate_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
