# Empty dependencies file for fig10_overall_kepler.
# This may be replaced when dependencies are built.
