file(REMOVE_RECURSE
  "CMakeFiles/fig10_overall_kepler.dir/fig10_overall_kepler.cpp.o"
  "CMakeFiles/fig10_overall_kepler.dir/fig10_overall_kepler.cpp.o.d"
  "fig10_overall_kepler"
  "fig10_overall_kepler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_overall_kepler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
