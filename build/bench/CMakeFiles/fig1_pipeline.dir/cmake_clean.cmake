file(REMOVE_RECURSE
  "CMakeFiles/fig1_pipeline.dir/fig1_pipeline.cpp.o"
  "CMakeFiles/fig1_pipeline.dir/fig1_pipeline.cpp.o.d"
  "fig1_pipeline"
  "fig1_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
