file(REMOVE_RECURSE
  "CMakeFiles/ablation_prefix_scan.dir/ablation_prefix_scan.cpp.o"
  "CMakeFiles/ablation_prefix_scan.dir/ablation_prefix_scan.cpp.o.d"
  "ablation_prefix_scan"
  "ablation_prefix_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefix_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
