# Empty dependencies file for ablation_bank_conflicts.
# This may be replaced when dependencies are built.
