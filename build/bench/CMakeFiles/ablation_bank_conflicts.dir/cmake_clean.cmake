file(REMOVE_RECURSE
  "CMakeFiles/ablation_bank_conflicts.dir/ablation_bank_conflicts.cpp.o"
  "CMakeFiles/ablation_bank_conflicts.dir/ablation_bank_conflicts.cpp.o.d"
  "ablation_bank_conflicts"
  "ablation_bank_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bank_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
