file(REMOVE_RECURSE
  "CMakeFiles/pfam_distribution_speedup.dir/pfam_distribution_speedup.cpp.o"
  "CMakeFiles/pfam_distribution_speedup.dir/pfam_distribution_speedup.cpp.o.d"
  "pfam_distribution_speedup"
  "pfam_distribution_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfam_distribution_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
