# Empty compiler generated dependencies file for pfam_distribution_speedup.
# This may be replaced when dependencies are built.
