# Empty compiler generated dependencies file for ablation_double_buffer.
# This may be replaced when dependencies are built.
