file(REMOVE_RECURSE
  "CMakeFiles/ablation_double_buffer.dir/ablation_double_buffer.cpp.o"
  "CMakeFiles/ablation_double_buffer.dir/ablation_double_buffer.cpp.o.d"
  "ablation_double_buffer"
  "ablation_double_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_double_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
