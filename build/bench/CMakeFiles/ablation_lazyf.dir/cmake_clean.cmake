file(REMOVE_RECURSE
  "CMakeFiles/ablation_lazyf.dir/ablation_lazyf.cpp.o"
  "CMakeFiles/ablation_lazyf.dir/ablation_lazyf.cpp.o.d"
  "ablation_lazyf"
  "ablation_lazyf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lazyf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
