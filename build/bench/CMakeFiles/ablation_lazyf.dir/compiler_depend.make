# Empty compiler generated dependencies file for ablation_lazyf.
# This may be replaced when dependencies are built.
