file(REMOVE_RECURSE
  "CMakeFiles/ablation_reduction.dir/ablation_reduction.cpp.o"
  "CMakeFiles/ablation_reduction.dir/ablation_reduction.cpp.o.d"
  "ablation_reduction"
  "ablation_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
