file(REMOVE_RECURSE
  "CMakeFiles/report_kernel_analysis.dir/report_kernel_analysis.cpp.o"
  "CMakeFiles/report_kernel_analysis.dir/report_kernel_analysis.cpp.o.d"
  "report_kernel_analysis"
  "report_kernel_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_kernel_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
