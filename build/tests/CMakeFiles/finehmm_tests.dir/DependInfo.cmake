
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_binary_io.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_binary_io.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_binary_io.cpp.o.d"
  "/root/repo/tests/test_bio.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_bio.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_bio.cpp.o.d"
  "/root/repo/tests/test_checkpoint.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_checkpoint.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_counters.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_counters.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_counters.cpp.o.d"
  "/root/repo/tests/test_cross_engine.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_cross_engine.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_cross_engine.cpp.o.d"
  "/root/repo/tests/test_filters.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_filters.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_filters.cpp.o.d"
  "/root/repo/tests/test_fwd_filter.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_fwd_filter.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_fwd_filter.cpp.o.d"
  "/root/repo/tests/test_glocal.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_glocal.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_glocal.cpp.o.d"
  "/root/repo/tests/test_goldens.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_goldens.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_goldens.cpp.o.d"
  "/root/repo/tests/test_gpu_kernels.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_gpu_kernels.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_gpu_kernels.cpp.o.d"
  "/root/repo/tests/test_hmm.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_hmm.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_hmm.cpp.o.d"
  "/root/repo/tests/test_io_robustness.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_io_robustness.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_io_robustness.cpp.o.d"
  "/root/repo/tests/test_kernel_config.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_kernel_config.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_kernel_config.cpp.o.d"
  "/root/repo/tests/test_model_db.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_model_db.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_model_db.cpp.o.d"
  "/root/repo/tests/test_msv_wide.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_msv_wide.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_msv_wide.cpp.o.d"
  "/root/repo/tests/test_null2.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_null2.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_null2.cpp.o.d"
  "/root/repo/tests/test_perf_report.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_perf_report.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_perf_report.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_pipeline_extended.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_pipeline_extended.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_pipeline_extended.cpp.o.d"
  "/root/repo/tests/test_posterior.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_posterior.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_posterior.cpp.o.d"
  "/root/repo/tests/test_priors.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_priors.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_priors.cpp.o.d"
  "/root/repo/tests/test_profile.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_profile.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_profile.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_seq_db_io.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_seq_db_io.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_seq_db_io.cpp.o.d"
  "/root/repo/tests/test_simd_vec.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_simd_vec.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_simd_vec.cpp.o.d"
  "/root/repo/tests/test_simt.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_simt.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_simt.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_ssv.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_ssv.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_ssv.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_stockholm.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_stockholm.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_stockholm.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_vit_prefix.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_vit_prefix.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_vit_prefix.cpp.o.d"
  "/root/repo/tests/test_vit_wide.cpp" "tests/CMakeFiles/finehmm_tests.dir/test_vit_wide.cpp.o" "gcc" "tests/CMakeFiles/finehmm_tests.dir/test_vit_wide.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/finehmm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
