# Empty compiler generated dependencies file for finehmm_tests.
# This may be replaced when dependencies are built.
