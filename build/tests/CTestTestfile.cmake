# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/finehmm_tests[1]_include.cmake")
add_test(tools_smoke "bash" "/root/repo/scripts/smoke_tools.sh" "/root/repo/build/examples")
set_tests_properties(tools_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;0;")
