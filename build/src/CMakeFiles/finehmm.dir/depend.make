# Empty dependencies file for finehmm.
# This may be replaced when dependencies are built.
