file(REMOVE_RECURSE
  "libfinehmm.a"
)
