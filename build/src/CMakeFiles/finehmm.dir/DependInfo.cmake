
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/alphabet.cpp" "src/CMakeFiles/finehmm.dir/bio/alphabet.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/bio/alphabet.cpp.o.d"
  "/root/repo/src/bio/fasta.cpp" "src/CMakeFiles/finehmm.dir/bio/fasta.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/bio/fasta.cpp.o.d"
  "/root/repo/src/bio/packing.cpp" "src/CMakeFiles/finehmm.dir/bio/packing.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/bio/packing.cpp.o.d"
  "/root/repo/src/bio/seq_db_io.cpp" "src/CMakeFiles/finehmm.dir/bio/seq_db_io.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/bio/seq_db_io.cpp.o.d"
  "/root/repo/src/bio/sequence.cpp" "src/CMakeFiles/finehmm.dir/bio/sequence.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/bio/sequence.cpp.o.d"
  "/root/repo/src/bio/stockholm.cpp" "src/CMakeFiles/finehmm.dir/bio/stockholm.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/bio/stockholm.cpp.o.d"
  "/root/repo/src/bio/synthetic.cpp" "src/CMakeFiles/finehmm.dir/bio/synthetic.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/bio/synthetic.cpp.o.d"
  "/root/repo/src/cpu/checkpoint.cpp" "src/CMakeFiles/finehmm.dir/cpu/checkpoint.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/cpu/checkpoint.cpp.o.d"
  "/root/repo/src/cpu/fwd_filter.cpp" "src/CMakeFiles/finehmm.dir/cpu/fwd_filter.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/cpu/fwd_filter.cpp.o.d"
  "/root/repo/src/cpu/generic.cpp" "src/CMakeFiles/finehmm.dir/cpu/generic.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/cpu/generic.cpp.o.d"
  "/root/repo/src/cpu/msv_filter.cpp" "src/CMakeFiles/finehmm.dir/cpu/msv_filter.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/cpu/msv_filter.cpp.o.d"
  "/root/repo/src/cpu/msv_scalar.cpp" "src/CMakeFiles/finehmm.dir/cpu/msv_scalar.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/cpu/msv_scalar.cpp.o.d"
  "/root/repo/src/cpu/posterior.cpp" "src/CMakeFiles/finehmm.dir/cpu/posterior.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/cpu/posterior.cpp.o.d"
  "/root/repo/src/cpu/ssv.cpp" "src/CMakeFiles/finehmm.dir/cpu/ssv.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/cpu/ssv.cpp.o.d"
  "/root/repo/src/cpu/trace.cpp" "src/CMakeFiles/finehmm.dir/cpu/trace.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/cpu/trace.cpp.o.d"
  "/root/repo/src/cpu/vit_filter.cpp" "src/CMakeFiles/finehmm.dir/cpu/vit_filter.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/cpu/vit_filter.cpp.o.d"
  "/root/repo/src/cpu/vit_scalar.cpp" "src/CMakeFiles/finehmm.dir/cpu/vit_scalar.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/cpu/vit_scalar.cpp.o.d"
  "/root/repo/src/gpu/kernel_config.cpp" "src/CMakeFiles/finehmm.dir/gpu/kernel_config.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/gpu/kernel_config.cpp.o.d"
  "/root/repo/src/gpu/msv_kernel.cpp" "src/CMakeFiles/finehmm.dir/gpu/msv_kernel.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/gpu/msv_kernel.cpp.o.d"
  "/root/repo/src/gpu/msv_sync_kernel.cpp" "src/CMakeFiles/finehmm.dir/gpu/msv_sync_kernel.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/gpu/msv_sync_kernel.cpp.o.d"
  "/root/repo/src/gpu/placement_policy.cpp" "src/CMakeFiles/finehmm.dir/gpu/placement_policy.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/gpu/placement_policy.cpp.o.d"
  "/root/repo/src/gpu/search.cpp" "src/CMakeFiles/finehmm.dir/gpu/search.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/gpu/search.cpp.o.d"
  "/root/repo/src/gpu/ssv_kernel.cpp" "src/CMakeFiles/finehmm.dir/gpu/ssv_kernel.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/gpu/ssv_kernel.cpp.o.d"
  "/root/repo/src/gpu/vit_kernel.cpp" "src/CMakeFiles/finehmm.dir/gpu/vit_kernel.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/gpu/vit_kernel.cpp.o.d"
  "/root/repo/src/gpu/vit_prefix_kernel.cpp" "src/CMakeFiles/finehmm.dir/gpu/vit_prefix_kernel.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/gpu/vit_prefix_kernel.cpp.o.d"
  "/root/repo/src/hmm/binary_io.cpp" "src/CMakeFiles/finehmm.dir/hmm/binary_io.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/hmm/binary_io.cpp.o.d"
  "/root/repo/src/hmm/builder.cpp" "src/CMakeFiles/finehmm.dir/hmm/builder.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/hmm/builder.cpp.o.d"
  "/root/repo/src/hmm/generator.cpp" "src/CMakeFiles/finehmm.dir/hmm/generator.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/hmm/generator.cpp.o.d"
  "/root/repo/src/hmm/hmm_io.cpp" "src/CMakeFiles/finehmm.dir/hmm/hmm_io.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/hmm/hmm_io.cpp.o.d"
  "/root/repo/src/hmm/model_db.cpp" "src/CMakeFiles/finehmm.dir/hmm/model_db.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/hmm/model_db.cpp.o.d"
  "/root/repo/src/hmm/plan7.cpp" "src/CMakeFiles/finehmm.dir/hmm/plan7.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/hmm/plan7.cpp.o.d"
  "/root/repo/src/hmm/priors.cpp" "src/CMakeFiles/finehmm.dir/hmm/priors.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/hmm/priors.cpp.o.d"
  "/root/repo/src/hmm/profile.cpp" "src/CMakeFiles/finehmm.dir/hmm/profile.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/hmm/profile.cpp.o.d"
  "/root/repo/src/hmm/sampler.cpp" "src/CMakeFiles/finehmm.dir/hmm/sampler.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/hmm/sampler.cpp.o.d"
  "/root/repo/src/perf/cost_model.cpp" "src/CMakeFiles/finehmm.dir/perf/cost_model.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/perf/cost_model.cpp.o.d"
  "/root/repo/src/perf/report.cpp" "src/CMakeFiles/finehmm.dir/perf/report.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/perf/report.cpp.o.d"
  "/root/repo/src/pipeline/multi_search.cpp" "src/CMakeFiles/finehmm.dir/pipeline/multi_search.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/pipeline/multi_search.cpp.o.d"
  "/root/repo/src/pipeline/null2.cpp" "src/CMakeFiles/finehmm.dir/pipeline/null2.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/pipeline/null2.cpp.o.d"
  "/root/repo/src/pipeline/pipeline.cpp" "src/CMakeFiles/finehmm.dir/pipeline/pipeline.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/pipeline/pipeline.cpp.o.d"
  "/root/repo/src/pipeline/report.cpp" "src/CMakeFiles/finehmm.dir/pipeline/report.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/pipeline/report.cpp.o.d"
  "/root/repo/src/pipeline/workload.cpp" "src/CMakeFiles/finehmm.dir/pipeline/workload.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/pipeline/workload.cpp.o.d"
  "/root/repo/src/profile/fwd_profile.cpp" "src/CMakeFiles/finehmm.dir/profile/fwd_profile.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/profile/fwd_profile.cpp.o.d"
  "/root/repo/src/profile/msv_profile.cpp" "src/CMakeFiles/finehmm.dir/profile/msv_profile.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/profile/msv_profile.cpp.o.d"
  "/root/repo/src/profile/vit_profile.cpp" "src/CMakeFiles/finehmm.dir/profile/vit_profile.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/profile/vit_profile.cpp.o.d"
  "/root/repo/src/simt/device.cpp" "src/CMakeFiles/finehmm.dir/simt/device.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/simt/device.cpp.o.d"
  "/root/repo/src/simt/grid.cpp" "src/CMakeFiles/finehmm.dir/simt/grid.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/simt/grid.cpp.o.d"
  "/root/repo/src/simt/occupancy.cpp" "src/CMakeFiles/finehmm.dir/simt/occupancy.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/simt/occupancy.cpp.o.d"
  "/root/repo/src/stats/calibrate.cpp" "src/CMakeFiles/finehmm.dir/stats/calibrate.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/stats/calibrate.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/CMakeFiles/finehmm.dir/stats/distributions.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/stats/distributions.cpp.o.d"
  "/root/repo/src/util/logspace.cpp" "src/CMakeFiles/finehmm.dir/util/logspace.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/util/logspace.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/finehmm.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/finehmm.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/util/table.cpp.o.d"
  "/root/repo/src/util/threadpool.cpp" "src/CMakeFiles/finehmm.dir/util/threadpool.cpp.o" "gcc" "src/CMakeFiles/finehmm.dir/util/threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
