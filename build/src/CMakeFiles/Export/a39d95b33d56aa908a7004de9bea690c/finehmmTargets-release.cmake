#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "finehmm::finehmm" for configuration "Release"
set_property(TARGET finehmm::finehmm APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(finehmm::finehmm PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libfinehmm.a"
  )

list(APPEND _cmake_import_check_targets finehmm::finehmm )
list(APPEND _cmake_import_check_files_for_finehmm::finehmm "${_IMPORT_PREFIX}/lib/libfinehmm.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
