file(REMOVE_RECURSE
  "CMakeFiles/hmmscan_tool.dir/hmmscan_tool.cpp.o"
  "CMakeFiles/hmmscan_tool.dir/hmmscan_tool.cpp.o.d"
  "hmmscan_tool"
  "hmmscan_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmscan_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
