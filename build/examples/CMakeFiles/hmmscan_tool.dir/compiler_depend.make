# Empty compiler generated dependencies file for hmmscan_tool.
# This may be replaced when dependencies are built.
