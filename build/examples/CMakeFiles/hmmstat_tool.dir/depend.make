# Empty dependencies file for hmmstat_tool.
# This may be replaced when dependencies are built.
