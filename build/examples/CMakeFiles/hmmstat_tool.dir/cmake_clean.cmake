file(REMOVE_RECURSE
  "CMakeFiles/hmmstat_tool.dir/hmmstat_tool.cpp.o"
  "CMakeFiles/hmmstat_tool.dir/hmmstat_tool.cpp.o.d"
  "hmmstat_tool"
  "hmmstat_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmstat_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
