# Empty compiler generated dependencies file for hmmbuild_tool.
# This may be replaced when dependencies are built.
