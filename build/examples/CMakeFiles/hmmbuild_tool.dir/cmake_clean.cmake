file(REMOVE_RECURSE
  "CMakeFiles/hmmbuild_tool.dir/hmmbuild_tool.cpp.o"
  "CMakeFiles/hmmbuild_tool.dir/hmmbuild_tool.cpp.o.d"
  "hmmbuild_tool"
  "hmmbuild_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmbuild_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
