# Empty compiler generated dependencies file for hmmemit_tool.
# This may be replaced when dependencies are built.
