file(REMOVE_RECURSE
  "CMakeFiles/hmmemit_tool.dir/hmmemit_tool.cpp.o"
  "CMakeFiles/hmmemit_tool.dir/hmmemit_tool.cpp.o.d"
  "hmmemit_tool"
  "hmmemit_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmemit_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
