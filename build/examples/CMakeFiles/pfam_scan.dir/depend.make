# Empty dependencies file for pfam_scan.
# This may be replaced when dependencies are built.
