file(REMOVE_RECURSE
  "CMakeFiles/pfam_scan.dir/pfam_scan.cpp.o"
  "CMakeFiles/pfam_scan.dir/pfam_scan.cpp.o.d"
  "pfam_scan"
  "pfam_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfam_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
