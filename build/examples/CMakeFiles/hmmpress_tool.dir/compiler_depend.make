# Empty compiler generated dependencies file for hmmpress_tool.
# This may be replaced when dependencies are built.
