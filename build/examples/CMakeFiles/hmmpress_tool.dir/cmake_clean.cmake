file(REMOVE_RECURSE
  "CMakeFiles/hmmpress_tool.dir/hmmpress_tool.cpp.o"
  "CMakeFiles/hmmpress_tool.dir/hmmpress_tool.cpp.o.d"
  "hmmpress_tool"
  "hmmpress_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmpress_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
