file(REMOVE_RECURSE
  "CMakeFiles/seqconvert_tool.dir/seqconvert_tool.cpp.o"
  "CMakeFiles/seqconvert_tool.dir/seqconvert_tool.cpp.o.d"
  "seqconvert_tool"
  "seqconvert_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqconvert_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
