# Empty dependencies file for seqconvert_tool.
# This may be replaced when dependencies are built.
