file(REMOVE_RECURSE
  "CMakeFiles/hmmsearch_tool.dir/hmmsearch_tool.cpp.o"
  "CMakeFiles/hmmsearch_tool.dir/hmmsearch_tool.cpp.o.d"
  "hmmsearch_tool"
  "hmmsearch_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmsearch_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
