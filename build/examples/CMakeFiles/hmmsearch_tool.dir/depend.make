# Empty dependencies file for hmmsearch_tool.
# This may be replaced when dependencies are built.
