file(REMOVE_RECURSE
  "CMakeFiles/gpu_speedup_demo.dir/gpu_speedup_demo.cpp.o"
  "CMakeFiles/gpu_speedup_demo.dir/gpu_speedup_demo.cpp.o.d"
  "gpu_speedup_demo"
  "gpu_speedup_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_speedup_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
