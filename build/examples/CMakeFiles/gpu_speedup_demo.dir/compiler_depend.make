# Empty compiler generated dependencies file for gpu_speedup_demo.
# This may be replaced when dependencies are built.
