# Empty dependencies file for hmmsim_tool.
# This may be replaced when dependencies are built.
