file(REMOVE_RECURSE
  "CMakeFiles/hmmsim_tool.dir/hmmsim_tool.cpp.o"
  "CMakeFiles/hmmsim_tool.dir/hmmsim_tool.cpp.o.d"
  "hmmsim_tool"
  "hmmsim_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmsim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
