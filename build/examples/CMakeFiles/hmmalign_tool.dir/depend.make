# Empty dependencies file for hmmalign_tool.
# This may be replaced when dependencies are built.
