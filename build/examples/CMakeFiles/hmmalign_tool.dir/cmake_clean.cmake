file(REMOVE_RECURSE
  "CMakeFiles/hmmalign_tool.dir/hmmalign_tool.cpp.o"
  "CMakeFiles/hmmalign_tool.dir/hmmalign_tool.cpp.o.d"
  "hmmalign_tool"
  "hmmalign_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmmalign_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
