// SIMT substrate unit tests: warp primitives, bank-conflict accounting,
// occupancy calculator, grid launcher.
#include <gtest/gtest.h>

#include "simt/grid.hpp"
#include "simt/occupancy.hpp"
#include "simt/warp.hpp"

namespace {

using namespace finehmm;
using simt::DeviceSpec;
using simt::kWarpSize;
using simt::PerfCounters;
using simt::SharedMemory;
using simt::WarpContext;
using simt::WarpReg;

struct SimtFixture {
  DeviceSpec dev = DeviceSpec::tesla_k40();
  PerfCounters counters;
  SharedMemory smem{4096, counters};
  WarpContext ctx{dev, counters, smem, 0, 1};
};

TEST(Warp, ShflUpShiftsLanes) {
  SimtFixture f;
  WarpReg<int> a;
  for (int i = 0; i < kWarpSize; ++i) a[i] = i * 10;
  auto r = f.ctx.shfl_up(a, 1, -7);
  EXPECT_EQ(r[0], -7);
  for (int i = 1; i < kWarpSize; ++i) EXPECT_EQ(r[i], (i - 1) * 10);
  EXPECT_EQ(f.counters.shuffles, 1u);
}

TEST(Warp, ReduceMaxFindsMaxAndCountsShuffles) {
  SimtFixture f;
  WarpReg<std::int16_t> a;
  for (int i = 0; i < kWarpSize; ++i) a[i] = static_cast<std::int16_t>(i * 3);
  a[17] = 1000;
  EXPECT_EQ(f.ctx.reduce_max(a), 1000);
  EXPECT_EQ(f.counters.shuffles, 5u);  // log2(32) butterfly steps
}

TEST(Warp, ReduceMaxFallsBackToSharedOnFermi) {
  DeviceSpec dev = DeviceSpec::gtx580();
  PerfCounters counters;
  SharedMemory smem(4096, counters);
  WarpContext ctx(dev, counters, smem, 0, 1);
  WarpReg<std::uint8_t> a{};
  a[3] = 42;
  EXPECT_EQ(ctx.reduce_max(a), 42);
  EXPECT_EQ(counters.shuffles, 0u);
  EXPECT_GT(counters.smem_cycles, 0u);  // emulated through shared memory
}

TEST(Warp, VoteAllAndAny) {
  SimtFixture f;
  WarpReg<bool> all_true;
  all_true.lane.fill(true);
  EXPECT_TRUE(f.ctx.vote_all(all_true));
  EXPECT_TRUE(f.ctx.vote_any(all_true));
  all_true[13] = false;
  EXPECT_FALSE(f.ctx.vote_all(all_true));
  EXPECT_TRUE(f.ctx.vote_any(all_true));
  EXPECT_EQ(f.counters.votes, 4u);
}

TEST(Warp, SaturatingByteOps) {
  SimtFixture f;
  auto a = f.ctx.splat<std::uint8_t>(250);
  auto b = f.ctx.splat<std::uint8_t>(10);
  EXPECT_EQ(f.ctx.adds_u8(a, b)[0], 255);
  EXPECT_EQ(f.ctx.subs_u8(b, a)[0], 0);
}

TEST(Warp, StickyNegInfWordAdd) {
  SimtFixture f;
  auto ninf = f.ctx.splat<std::int16_t>(-32768);
  auto big = f.ctx.splat<std::int16_t>(30000);
  EXPECT_EQ(f.ctx.adds_w(ninf, big)[5], -32768);
  EXPECT_EQ(f.ctx.adds_w(big, big)[5], 32767);
}

// --- shared memory bank conflicts ---

TEST(SharedMemory, ConsecutiveBytesAreConflictFree) {
  SimtFixture f;
  // The paper's "intrinsic conflict-free access": 32 consecutive byte
  // cells span 8 words in 8 distinct banks -> one cycle.
  f.ctx.smem_read_seq<std::uint8_t>(0, 0);
  EXPECT_EQ(f.counters.smem_accesses, 1u);
  EXPECT_EQ(f.counters.smem_cycles, 1u);
}

TEST(SharedMemory, ConsecutiveWordsAreConflictFree) {
  SimtFixture f;
  f.ctx.smem_read_seq<std::uint32_t>(0, 0);
  EXPECT_EQ(f.counters.smem_cycles, 1u);
}

TEST(SharedMemory, Stride32WordsIs32WayConflict) {
  SimtFixture f;
  // Lane i reads word i*32: all words map to bank 0 -> 32 replays.
  f.ctx.smem_read_strided<std::uint32_t>(0, 0, 32);
  EXPECT_EQ(f.counters.smem_cycles, 32u);
}

TEST(SharedMemory, Stride2WordsIs2WayConflict) {
  SimtFixture f;
  f.ctx.smem_read_strided<std::uint32_t>(0, 0, 2);
  EXPECT_EQ(f.counters.smem_cycles, 2u);
}

TEST(SharedMemory, BroadcastIsFree) {
  SimtFixture f;
  f.ctx.smem_read_strided<std::uint32_t>(0, 0, 0);  // all lanes same word
  EXPECT_EQ(f.counters.smem_cycles, 1u);
}

// --- occupancy ---

TEST(Occupancy, K40FullOccupancyCase) {
  auto dev = DeviceSpec::tesla_k40();
  simt::KernelResources res;
  res.regs_per_thread = 32;
  res.smem_per_block = 0;
  res.threads_per_block = 256;  // 8 warps
  auto occ = simt::compute_occupancy(dev, res);
  // 32 regs * 32 lanes = 1024/warp -> 64 warps by regs; warp slots allow
  // 8 blocks * 8 warps = 64 warps -> 100%.
  EXPECT_EQ(occ.warps_per_sm, 64);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
}

TEST(Occupancy, RegisterLimited) {
  auto dev = DeviceSpec::tesla_k40();
  simt::KernelResources res;
  res.regs_per_thread = 63;  // ceil(63*32, 256) = 2048 regs/warp
  res.smem_per_block = 0;
  res.threads_per_block = 256;
  auto occ = simt::compute_occupancy(dev, res);
  // 65536 / 2048 = 32 warps by registers -> 4 blocks of 8 warps -> 50%.
  EXPECT_EQ(occ.warps_per_sm, 32);
  EXPECT_DOUBLE_EQ(occ.fraction, 0.5);
  EXPECT_EQ(occ.limiter, simt::Occupancy::Limiter::kRegisters);
}

TEST(Occupancy, SharedMemoryLimited) {
  auto dev = DeviceSpec::tesla_k40();
  simt::KernelResources res;
  res.regs_per_thread = 32;
  res.smem_per_block = 24 * 1024;  // two blocks fit
  res.threads_per_block = 128;     // 4 warps
  auto occ = simt::compute_occupancy(dev, res);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.warps_per_sm, 8);
  EXPECT_EQ(occ.limiter, simt::Occupancy::Limiter::kSharedMem);
}

TEST(Occupancy, InfeasibleSmemGivesZero) {
  auto dev = DeviceSpec::tesla_k40();
  simt::KernelResources res;
  res.smem_per_block = 128 * 1024;
  res.threads_per_block = 32;
  auto occ = simt::compute_occupancy(dev, res);
  EXPECT_EQ(occ.warps_per_sm, 0);
}

TEST(Occupancy, FermiHasFewerRegisters) {
  auto k40 = DeviceSpec::tesla_k40();
  auto f580 = DeviceSpec::gtx580();
  simt::KernelResources res;
  res.regs_per_thread = 63;
  res.smem_per_block = 0;
  res.threads_per_block = 192;
  auto a = simt::compute_occupancy(k40, res);
  auto b = simt::compute_occupancy(f580, res);
  EXPECT_GT(a.fraction, b.fraction);  // §IV-A: Fermi has half the registers
}

// --- grid launcher ---

TEST(Grid, AllItemsProcessedExactlyOnce) {
  auto dev = DeviceSpec::tesla_k40();
  simt::LaunchConfig cfg;
  cfg.warps_per_block = 4;
  cfg.grid_blocks = 8;
  cfg.smem_bytes_per_block = 1024;
  std::vector<std::atomic<int>> hits(501);
  for (auto& h : hits) h = 0;
  auto counters = simt::launch_grid(
      dev, cfg, hits.size(),
      [&](WarpContext&, std::size_t item) { hits[item]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(counters.sequences, hits.size());
}

TEST(Grid, PrologueRunsOncePerBlock) {
  auto dev = DeviceSpec::tesla_k40();
  simt::LaunchConfig cfg;
  cfg.warps_per_block = 2;
  cfg.grid_blocks = 5;
  cfg.smem_bytes_per_block = 64;
  std::atomic<int> prologues{0};
  simt::launch_grid(
      dev, cfg, 10, [](WarpContext&, std::size_t) {},
      [&](WarpContext&) { prologues++; });
  EXPECT_EQ(prologues.load(), 5);
}

}  // namespace
