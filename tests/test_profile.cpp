// Vectorized profile construction: byteification/wordification properties
// and layout consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "hmm/generator.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"

namespace {

using namespace finehmm;

struct ProfFixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  profile::MsvProfile msv;
  profile::VitProfile vit;
  explicit ProfFixture(int M)
      : model(hmm::paper_model(M)),
        prof(model, hmm::AlignMode::kLocalMultihit, 400),
        msv(prof),
        vit(prof) {}
};

class ProfileQuantization : public ::testing::TestWithParam<int> {};

TEST_P(ProfileQuantization, ByteCostsInvertToScoresWithinHalfUnit) {
  ProfFixture fx(GetParam());
  for (int k = 1; k <= fx.prof.length(); ++k) {
    for (int x = 0; x < bio::kK; ++x) {
      float sc = fx.prof.msc(k, x);
      std::uint8_t cost = fx.msv.cost(x, k);
      if (cost == 255) continue;  // clipped: score below representable range
      float recovered = (static_cast<float>(fx.msv.bias()) - cost) /
                        fx.msv.scale();
      EXPECT_NEAR(recovered, sc, 0.5f / fx.msv.scale() + 1e-4f)
          << "k=" << k << " x=" << x;
    }
  }
}

TEST_P(ProfileQuantization, WordScoresInvertWithinHalfUnit) {
  ProfFixture fx(GetParam());
  for (int k = 1; k <= fx.prof.length(); ++k) {
    for (int x = 0; x < bio::kK; ++x) {
      float sc = fx.prof.msc(k, x);
      std::int16_t w = fx.vit.msc(x, k);
      if (w == profile::kWordNegInf) {
        // -inf proper, or a finite score below the representable floor.
        EXPECT_LE(sc, -32767.0f / fx.vit.scale() + 1.0f);
        continue;
      }
      EXPECT_NEAR(static_cast<float>(w) / fx.vit.scale(), sc,
                  0.5f / fx.vit.scale() + 1e-5f);
    }
  }
}

TEST_P(ProfileQuantization, StripedLayoutPermutesLinear) {
  ProfFixture fx(GetParam());
  const int M = fx.prof.length();
  const int Q = fx.msv.striped_segments();
  for (int x = 0; x < bio::kKp; ++x) {
    const std::uint8_t* striped = fx.msv.striped_row(x);
    for (int k = 1; k <= M; ++k) {
      int q = (k - 1) % Q;
      int j = (k - 1) / Q;
      EXPECT_EQ(striped[q * profile::MsvProfile::kLanes + j],
                fx.msv.cost(x, k))
          << "x=" << x << " k=" << k;
    }
  }
}

TEST_P(ProfileQuantization, PaddedTailIsInert) {
  ProfFixture fx(GetParam());
  const int M = fx.prof.length();
  for (int x = 0; x < bio::kKp; ++x) {
    const std::uint8_t* row = fx.msv.linear_row(x);
    for (int k = M; k < fx.msv.padded_length(); ++k)
      EXPECT_EQ(row[k], 255) << "pad cell must cost 255";
    const std::int16_t* wrow = fx.vit.msc_row(x);
    for (int k = M; k < fx.vit.padded_length(); ++k)
      EXPECT_EQ(wrow[k], profile::kWordNegInf);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProfileQuantization,
                         ::testing::Values(1, 16, 17, 100, 333),
                         ::testing::PrintToStringParamName());

TEST(ProfileQuantization, TjbGrowsWithLength) {
  // tjb is the byte COST of the N/J->B move, -log(3/(L+3)) scaled: longer
  // targets make the move less probable, so the cost grows.
  ProfFixture fx(50);
  std::uint8_t prev = fx.msv.tjb_for(1);
  for (int L : {10, 100, 1000, 10000}) {
    std::uint8_t cur = fx.msv.tjb_for(L);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(ProfileQuantization, WordLengthModelChargesLoops) {
  // The word scale is fine enough that the per-residue loop cost must be
  // nonzero for realistic lengths (unlike the byte filter).
  ProfFixture fx(50);
  auto lm = fx.vit.length_model_for(400);
  EXPECT_LT(lm.loop, 0);
  EXPECT_GT(lm.loop, -20);
  auto lm_short = fx.vit.length_model_for(50);
  EXPECT_LT(lm_short.loop, lm.loop) << "shorter targets pay more per loop";
}

TEST(ProfileQuantization, StickyNegInfAddSemantics) {
  using profile::sat_add_word;
  EXPECT_EQ(sat_add_word(profile::kWordNegInf, 32767), profile::kWordNegInf);
  EXPECT_EQ(sat_add_word(10, profile::kWordNegInf), profile::kWordNegInf);
  EXPECT_EQ(sat_add_word(30000, 10000), 32767);
  EXPECT_EQ(sat_add_word(-30000, -10000), -32767) << "reserve -32768 for -inf";
  EXPECT_EQ(sat_add_word(5, -3), 2);
}

}  // namespace
