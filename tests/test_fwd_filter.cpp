// Striped float Forward filter vs the exact log-space reference.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "cpu/fwd_filter.hpp"
#include "cpu/generic.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"

namespace {

using namespace finehmm;

struct FwdFixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  profile::FwdProfile fwd;
  explicit FwdFixture(int M, std::uint64_t seed = 2,
                      double delete_extend = 0.5)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          spec.delete_extend = delete_extend;
          return hmm::generate_hmm(spec);
        }()),
        prof(model, hmm::AlignMode::kLocalMultihit, 400),
        fwd(prof) {}
};

class FwdFilterEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FwdFilterEquivalence, TracksExactForwardOnRandomSequences) {
  FwdFixture fx(GetParam());
  Pcg32 rng(31);
  cpu::FwdFilter filter(fx.fwd);
  for (int rep = 0; rep < 10; ++rep) {
    std::size_t L = 10 + rng.below(400);
    auto seq = bio::random_sequence(L, rng);
    float exact = cpu::generic_forward(fx.prof, seq.codes.data(), L, true);
    float striped = filter.score(seq.codes.data(), L);
    EXPECT_NEAR(striped, exact, 0.02f + 1e-4f * L)
        << "M=" << GetParam() << " L=" << L;
  }
}

TEST_P(FwdFilterEquivalence, TracksExactForwardOnHomologs) {
  FwdFixture fx(GetParam());
  Pcg32 rng(37);
  cpu::FwdFilter filter(fx.fwd);
  for (int rep = 0; rep < 6; ++rep) {
    auto seq = hmm::sample_homolog(fx.model, rng);
    float exact = cpu::generic_forward(fx.prof, seq.codes.data(),
                                       seq.length(), true);
    float striped = filter.score(seq.codes.data(), seq.length());
    // Homolog scores are large; tolerance scales with magnitude.
    EXPECT_NEAR(striped, exact, 0.05f + 2e-4f * seq.length());
  }
}

INSTANTIATE_TEST_SUITE_P(ModelSizes, FwdFilterEquivalence,
                         ::testing::Values(1, 3, 4, 5, 33, 100, 200),
                         ::testing::PrintToStringParamName());

TEST(FwdFilter, RescalingHandlesLongStrongTargets) {
  // A long sequence stuffed with homologous segments drives the raw
  // probability mass far beyond float range; the per-row rescaling must
  // keep the result finite and correct.
  FwdFixture fx(60);
  Pcg32 rng(41);
  bio::Sequence seq;
  seq.name = "long";
  for (int copy = 0; copy < 30; ++copy) {
    auto h = hmm::sample_homolog(fx.model, rng);
    seq.codes.insert(seq.codes.end(), h.codes.begin(), h.codes.end());
  }
  ASSERT_GT(seq.length(), 3000u);
  cpu::FwdFilter filter(fx.fwd);
  float striped = filter.score(seq.codes.data(), seq.length());
  float exact = cpu::generic_forward(fx.prof, seq.codes.data(),
                                     seq.length(), true);
  EXPECT_TRUE(std::isfinite(striped));
  EXPECT_NEAR(striped, exact, 0.02f * std::fabs(exact));
  EXPECT_GT(striped, 100.0f) << "30 planted copies must score huge";
}

TEST(FwdFilter, HighDeleteModelsConverge) {
  FwdFixture fx(96, 5, /*delete_extend=*/0.9);
  Pcg32 rng(43);
  cpu::FwdFilter filter(fx.fwd);
  for (int rep = 0; rep < 5; ++rep) {
    std::size_t L = 50 + rng.below(200);
    auto seq = bio::random_sequence(L, rng);
    float exact = cpu::generic_forward(fx.prof, seq.codes.data(), L, true);
    float striped = filter.score(seq.codes.data(), L);
    EXPECT_NEAR(striped, exact, 0.05f) << "L=" << L;
  }
}

TEST(FwdFilter, DominatesViterbiLikeTheExactForward) {
  FwdFixture fx(80);
  Pcg32 rng(47);
  cpu::FwdFilter filter(fx.fwd);
  for (int rep = 0; rep < 5; ++rep) {
    std::size_t L = 30 + rng.below(200);
    auto seq = bio::random_sequence(L, rng);
    float fwd = filter.score(seq.codes.data(), L);
    float vit = cpu::generic_viterbi(fx.prof, seq.codes.data(), L);
    EXPECT_GE(fwd, vit - 0.05f);
  }
}

}  // namespace
