// Dirichlet mixture priors.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "cpu/generic.hpp"
#include "hmm/builder.hpp"
#include "hmm/generator.hpp"
#include "hmm/priors.hpp"
#include "hmm/profile.hpp"
#include "hmm/sampler.hpp"

namespace {

using namespace finehmm;
using namespace finehmm::hmm;

TEST(Priors, PosteriorMeanIsNormalized) {
  const auto& mix = DirichletMixture::default_amino();
  std::array<double, bio::kK> counts{};
  for (auto c : {0.0, 1.0, 10.0}) {
    counts[3] = c;
    counts[7] = c / 2;
    auto p = mix.posterior_mean(counts);
    double total = 0.0;
    for (double v : p) {
      EXPECT_GT(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Priors, ResponsibilitiesSumToOne) {
  const auto& mix = DirichletMixture::default_amino();
  std::array<double, bio::kK> counts{};
  counts[9] = 5.0;  // leucine-heavy: hydrophobic component should light up
  auto w = mix.responsibilities(counts);
  double total = 0.0;
  for (double v : w) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Priors, ManyCountsDominateThePrior) {
  const auto& mix = DirichletMixture::default_amino();
  std::array<double, bio::kK> counts{};
  counts[0] = 100.0;  // 100 alanines
  auto p = mix.posterior_mean(counts);
  EXPECT_GT(p[0], 0.9);
}

TEST(Priors, ZeroCountsGiveSomethingBackgroundLike) {
  const auto& mix = DirichletMixture::default_amino();
  std::array<double, bio::kK> counts{};
  auto p = mix.posterior_mean(counts);
  // No residue should be wildly over- or under-represented a priori.
  for (int a = 0; a < bio::kK; ++a) {
    EXPECT_GT(p[a], 0.003) << bio::kCanonical[a];
    EXPECT_LT(p[a], 0.25) << bio::kCanonical[a];
  }
}

TEST(Priors, HydrophobicContextSharpensHydrophobicEstimates) {
  const auto& mix = DirichletMixture::default_amino();
  // Two observations of isoleucine...
  std::array<double, bio::kK> counts{};
  counts[bio::digitize('I')] = 2.0;
  auto p = mix.posterior_mean(counts);
  // ...should also raise the probability of the other core hydrophobics
  // (the mixture generalizes), unlike a flat pseudocount which cannot.
  const auto& bg = bio::background_frequencies();
  EXPECT_GT(p[bio::digitize('V')], bg[bio::digitize('V')] * 0.9);
  EXPECT_GT(p[bio::digitize('L')] + p[bio::digitize('V')] +
                p[bio::digitize('M')],
            0.20);
}

TEST(Priors, MixtureBuilderGeneralizesBetterOnTinyAlignments) {
  // Build from only three sequences sampled from a known model; score a
  // held-out homolog.  The mixture prior should not do worse than flat
  // pseudocounts (it usually does noticeably better).
  auto truth = paper_model(40);
  Pcg32 rng(71);
  SampleOptions opts;
  opts.fragment_prob = 0.0;
  opts.mean_flank = 1e-9;

  // "Alignment": ungapped samples of the core (equal length by luck of
  // low indel rates; retry until three match).
  std::vector<std::string> aln;
  while (aln.size() < 3) {
    auto s = sample_homolog(truth, rng, opts);
    if (s.length() == 40) aln.push_back(s.text());
  }
  auto held_out = sample_homolog(truth, rng, opts);

  BuildOptions with_mix;
  with_mix.use_dirichlet_mixture = true;
  BuildOptions flat;
  flat.use_dirichlet_mixture = false;
  auto m_mix = build_from_alignment(aln, "mix", with_mix);
  auto m_flat = build_from_alignment(aln, "flat", flat);

  SearchProfile p_mix(m_mix, AlignMode::kLocalMultihit, 100);
  SearchProfile p_flat(m_flat, AlignMode::kLocalMultihit, 100);
  float s_mix = cpu::generic_viterbi(p_mix, held_out.codes.data(),
                                     held_out.length());
  float s_flat = cpu::generic_viterbi(p_flat, held_out.codes.data(),
                                      held_out.length());
  EXPECT_GT(s_mix, s_flat - 2.0f);
}

}  // namespace
