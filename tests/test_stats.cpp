// Statistics: Gumbel/exponential distributions, fits, calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "bio/synthetic.hpp"
#include "cpu/msv_filter.hpp"
#include "cpu/vit_filter.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"
#include "stats/calibrate.hpp"
#include "stats/distributions.hpp"

namespace {

using namespace finehmm;
using namespace finehmm::stats;

TEST(Gumbel, CdfSurvComplement) {
  Gumbel g{2.0, 0.7};
  for (double x : {-3.0, 0.0, 2.0, 5.0, 20.0})
    EXPECT_NEAR(g.cdf(x) + g.surv(x), 1.0, 1e-12);
}

TEST(Gumbel, SurvIsAccurateInTheFarTail) {
  Gumbel g{0.0, kLambdaLog2};
  // For large x, P(X > x) ~ exp(-lambda x); naive 1-cdf would round to 0.
  double x = 60.0;
  EXPECT_NEAR(std::log(g.surv(x)), -kLambdaLog2 * x, 1e-6);
}

TEST(Gumbel, PdfIntegratesToOne) {
  Gumbel g{1.0, 0.9};
  double sum = 0.0, dx = 0.01;
  for (double x = -20.0; x < 40.0; x += dx) sum += g.pdf(x) * dx;
  EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(Gumbel, FitMuGivenLambdaRecoversParameters) {
  Gumbel truth{3.7, kLambdaLog2};
  Pcg32 rng(42);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = truth.sample(rng);
  auto fit = Gumbel::fit_mu_given_lambda(xs);
  EXPECT_NEAR(fit.mu, truth.mu, 0.1);
}

TEST(Gumbel, FullMlFitRecoversBothParameters) {
  Gumbel truth{-1.5, 1.3};
  Pcg32 rng(7);
  std::vector<double> xs(8000);
  for (auto& x : xs) x = truth.sample(rng);
  auto fit = Gumbel::fit_ml(xs);
  EXPECT_NEAR(fit.mu, truth.mu, 0.1);
  EXPECT_NEAR(fit.lambda, truth.lambda, 0.08);
}

TEST(ExponentialTail, SurvDecaysAtLambda) {
  ExponentialTail t{1.0, kLambdaLog2};
  EXPECT_DOUBLE_EQ(t.surv(0.5), 1.0);  // below the base
  EXPECT_NEAR(std::log(t.surv(11.0)), -kLambdaLog2 * 10.0, 1e-12);
}

TEST(ExponentialTail, FitTailMatchesEmpiricalQuantile) {
  Pcg32 rng(3);
  // Synthetic forward-like scores: Gaussian bulk + exponential tail.
  std::vector<double> xs(4000);
  for (auto& x : xs) x = rng.gaussian() * 1.5;
  auto t = ExponentialTail::fit_tail(xs, 0.04);
  // At the 96th percentile, P(X > x) should be about 0.04.
  std::sort(xs.begin(), xs.end());
  double q96 = xs[static_cast<std::size_t>(0.96 * xs.size())];
  EXPECT_NEAR(t.surv(q96), 0.04, 0.005);
}

TEST(KsTest, AcceptsTheTrueDistribution) {
  stats::Gumbel g{1.5, stats::kLambdaLog2};
  Pcg32 rng(77);
  std::vector<double> xs(800);
  for (auto& x : xs) x = g.sample(rng);
  auto r = stats::ks_test(xs, [&](double x) { return g.cdf(x); });
  EXPECT_LT(r.d, 0.06);
  EXPECT_GT(r.pvalue, 0.01);
}

TEST(KsTest, RejectsAWrongDistribution) {
  stats::Gumbel truth{1.5, stats::kLambdaLog2};
  stats::Gumbel wrong{4.0, stats::kLambdaLog2};  // shifted by 2.5 bits
  Pcg32 rng(78);
  std::vector<double> xs(800);
  for (auto& x : xs) x = truth.sample(rng);
  auto r = stats::ks_test(xs, [&](double x) { return wrong.cdf(x); });
  EXPECT_LT(r.pvalue, 1e-6);
}

TEST(KsTest, NullScoresAreGumbelDistributed) {
  // The statistical foundation of the pipeline (paper §I / Eddy 2008):
  // ViterbiFilter null scores must pass a KS test against the calibrated
  // Gumbel with lambda = log 2.
  auto model = hmm::paper_model(90);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 100);
  profile::VitProfile vit(prof);
  cpu::VitFilter filter(vit);
  Pcg32 rng(79);
  std::vector<double> bits(400);
  for (auto& b : bits) {
    auto seq = bio::random_sequence(100, rng);
    b = hmm::nats_to_bits(filter.score(seq.codes.data(), 100).score_nats,
                          100);
  }
  auto fit = stats::Gumbel::fit_mu_given_lambda(bits);
  auto r = stats::ks_test(bits, [&](double x) { return fit.cdf(x); });
  EXPECT_GT(r.pvalue, 0.001)
      << "null Viterbi scores must look Gumbel(log 2), D=" << r.d;
}

TEST(Evalue, ScalesWithDatabaseSize) {
  EXPECT_DOUBLE_EQ(evalue(1e-4, 1000000), 100.0);
}

TEST(Calibrate, PvaluesAreUniformOnNullScores) {
  // The calibrated Gumbel must turn random-sequence scores into roughly
  // uniform P-values: ~p of them below p.
  auto model = hmm::paper_model(100);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 100);
  profile::MsvProfile msv(prof);
  profile::VitProfile vit(prof);
  CalibrateOptions opts;
  opts.n_samples = 400;
  opts.with_forward = false;
  auto st = calibrate(prof, msv, vit, opts);

  // Fresh null sample (different seed).
  opts.seed = 987;
  Pcg32 rng(opts.seed);
  int below_10pct_msv = 0, below_10pct_vit = 0;
  const int n = 300;
  cpu::MsvFilter msv_filter(msv);
  cpu::VitFilter vit_filter(vit);
  for (int i = 0; i < n; ++i) {
    auto seq = bio::random_sequence(100, rng);
    auto m = msv_filter.score(seq.codes.data(), 100);
    auto v = vit_filter.score(seq.codes.data(), 100);
    if (st.msv_pvalue(hmm::nats_to_bits(m.score_nats, 100)) < 0.10)
      ++below_10pct_msv;
    if (st.vit_pvalue(hmm::nats_to_bits(v.score_nats, 100)) < 0.10)
      ++below_10pct_vit;
  }
  EXPECT_NEAR(below_10pct_msv / double(n), 0.10, 0.06);
  EXPECT_NEAR(below_10pct_vit / double(n), 0.10, 0.06);
}

TEST(Calibrate, HomologsGetTinyPvalues) {
  auto model = hmm::paper_model(150);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 200);
  profile::MsvProfile msv(prof);
  profile::VitProfile vit(prof);
  CalibrateOptions opts;
  opts.with_forward = false;
  auto st = calibrate(prof, msv, vit, opts);

  Pcg32 rng(55);
  cpu::VitFilter vit_filter(vit);
  for (int i = 0; i < 5; ++i) {
    auto seq = hmm::sample_homolog(model, rng);
    auto v = vit_filter.score(seq.codes.data(), seq.length());
    double p = st.vit_pvalue(
        hmm::nats_to_bits(v.score_nats, static_cast<int>(seq.length())));
    EXPECT_LT(p, 1e-6);
  }
}

}  // namespace
