// Viterbi traceback: path score equals the DP score, structural validity,
// and alignment rendering.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "cpu/generic.hpp"
#include "cpu/trace.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"

namespace {

using namespace finehmm;
using cpu::TraceState;

struct TraceFixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  explicit TraceFixture(int M, std::uint64_t seed = 3)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          return hmm::generate_hmm(spec);
        }()),
        prof(model, hmm::AlignMode::kLocalMultihit, 300) {}
};

class TraceProperties : public ::testing::TestWithParam<int> {};

TEST_P(TraceProperties, TraceScoreEqualsViterbiScore) {
  TraceFixture fx(GetParam());
  Pcg32 rng(11);
  for (int rep = 0; rep < 8; ++rep) {
    auto seq = rep % 2 == 0 ? hmm::sample_homolog(fx.model, rng)
                            : bio::random_sequence(30 + rng.below(250), rng);
    auto trace = cpu::viterbi_trace(fx.prof, seq.codes.data(), seq.length());
    float vit = cpu::generic_viterbi(fx.prof, seq.codes.data(), seq.length());
    EXPECT_NEAR(trace.score, vit, 1e-3f) << "DP vs DP-with-backpointers";
    float recomputed =
        cpu::trace_score(trace, fx.prof, seq.codes.data(), seq.length());
    EXPECT_NEAR(recomputed, trace.score, 1e-3f)
        << "path score must reproduce the DP score";
  }
}

TEST_P(TraceProperties, TraceIsStructurallyValid) {
  TraceFixture fx(GetParam());
  Pcg32 rng(13);
  auto seq = hmm::sample_homolog(fx.model, rng);
  auto trace = cpu::viterbi_trace(fx.prof, seq.codes.data(), seq.length());
  ASSERT_FALSE(trace.steps.empty());
  EXPECT_EQ(trace.steps.front().state, TraceState::kN);
  EXPECT_EQ(trace.steps.back().state, TraceState::kC);

  // Every sequence position is emitted exactly once, in order.
  std::size_t expect_i = 1;
  for (const auto& s : trace.steps) {
    bool emits = (s.state == TraceState::kM || s.state == TraceState::kI ||
                  (s.state == TraceState::kN && s.i > 0) ||
                  (s.state == TraceState::kJ && s.i > 0) ||
                  (s.state == TraceState::kC && s.i > 0));
    if (emits) {
      EXPECT_EQ(s.i, expect_i) << "emission order";
      ++expect_i;
    }
  }
  EXPECT_EQ(expect_i, seq.length() + 1) << "all residues emitted";

  // Model positions within a segment strictly increase.
  int last_k = 0;
  for (const auto& s : trace.steps) {
    if (s.state == TraceState::kB) last_k = 0;
    if (s.state == TraceState::kM || s.state == TraceState::kD) {
      EXPECT_GT(s.k, last_k);
      last_k = s.k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ModelSizes, TraceProperties,
                         ::testing::Values(8, 40, 120),
                         ::testing::PrintToStringParamName());

TEST(TraceAlignment, HomologAlignmentCoversModel) {
  TraceFixture fx(80);
  Pcg32 rng(17);
  hmm::SampleOptions opts;
  opts.fragment_prob = 0.0;
  auto seq = hmm::sample_homolog(fx.model, rng, opts);
  auto trace = cpu::viterbi_trace(fx.prof, seq.codes.data(), seq.length());
  auto alis = cpu::trace_alignments(trace, fx.prof, seq.codes.data());
  ASSERT_FALSE(alis.empty());
  const auto& a = alis.front();
  // A full-length homolog should align most of the model.
  EXPECT_LE(a.k_start, 8);
  EXPECT_GE(a.k_end, 72);
  EXPECT_EQ(a.model_line.size(), a.seq_line.size());
  EXPECT_EQ(a.model_line.size(), a.match_line.size());
  // The three lines contain no stray characters.
  for (char c : a.seq_line)
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(c)) || c == '-');
}

TEST(TraceAlignment, AlignmentSpansMatchTraceCoordinates) {
  TraceFixture fx(60);
  Pcg32 rng(19);
  auto seq = hmm::sample_homolog(fx.model, rng);
  auto trace = cpu::viterbi_trace(fx.prof, seq.codes.data(), seq.length());
  for (const auto& a :
       cpu::trace_alignments(trace, fx.prof, seq.codes.data())) {
    EXPECT_GE(a.k_start, 1);
    EXPECT_LE(a.k_end, 60);
    EXPECT_GE(a.i_start, 1u);
    EXPECT_LE(a.i_end, seq.length());
    EXPECT_LE(a.k_start, a.k_end);
    EXPECT_LE(a.i_start, a.i_end);
  }
}

TEST(TraceAlignment, RandomSequencesStillTraceCleanly) {
  TraceFixture fx(50);
  Pcg32 rng(23);
  for (int rep = 0; rep < 5; ++rep) {
    auto seq = bio::random_sequence(10 + rng.below(200), rng);
    auto trace = cpu::viterbi_trace(fx.prof, seq.codes.data(), seq.length());
    float recomputed =
        cpu::trace_score(trace, fx.prof, seq.codes.data(), seq.length());
    EXPECT_NEAR(recomputed, trace.score, 1e-3f);
  }
}

// The workspace overload must be bit-identical to the reference trace —
// not merely close: the pipeline engines rely on it to keep hit lists
// deterministic across serial and overlapped scans.
TEST(TraceWorkspace, BitIdenticalToReferenceAcrossModelsAndSequences) {
  Pcg32 rng(29);
  cpu::TraceWorkspace ws;  // one workspace reused across all (M, L) pairs
  for (int M : {8, 40, 120}) {
    TraceFixture fx(M, /*seed=*/static_cast<std::uint64_t>(M));
    for (int rep = 0; rep < 6; ++rep) {
      auto seq = rep % 2 == 0
                     ? hmm::sample_homolog(fx.model, rng)
                     : bio::random_sequence(5 + rng.below(240), rng);
      auto ref = cpu::viterbi_trace(fx.prof, seq.codes.data(), seq.length());
      auto fast =
          cpu::viterbi_trace(fx.prof, seq.codes.data(), seq.length(), ws);
      EXPECT_EQ(fast.score, ref.score) << "M=" << M << " rep=" << rep;
      ASSERT_EQ(fast.steps.size(), ref.steps.size())
          << "M=" << M << " rep=" << rep;
      for (std::size_t i = 0; i < ref.steps.size(); ++i) {
        EXPECT_EQ(fast.steps[i].state, ref.steps[i].state) << i;
        EXPECT_EQ(fast.steps[i].k, ref.steps[i].k) << i;
        EXPECT_EQ(fast.steps[i].i, ref.steps[i].i) << i;
      }
    }
  }
}

TEST(TraceWorkspace, HandlesShortestSequences) {
  TraceFixture fx(12);
  cpu::TraceWorkspace ws;
  for (std::size_t L : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    Pcg32 rng(31 + L);
    auto seq = bio::random_sequence(L, rng);
    auto ref = cpu::viterbi_trace(fx.prof, seq.codes.data(), L);
    auto fast = cpu::viterbi_trace(fx.prof, seq.codes.data(), L, ws);
    EXPECT_EQ(fast.score, ref.score) << L;
    EXPECT_EQ(fast.steps.size(), ref.steps.size()) << L;
  }
}

}  // namespace
