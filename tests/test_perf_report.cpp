// Kernel analysis report invariants.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "gpu/search.hpp"
#include "hmm/generator.hpp"
#include "perf/report.hpp"

namespace {

using namespace finehmm;

TEST(PerfReport, SharesSumToOneAndFieldsAreSane) {
  auto model = hmm::paper_model(100);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  Pcg32 rng(3);
  bio::SequenceDatabase db;
  for (int i = 0; i < 20; ++i) db.add(bio::random_sequence(200, rng));
  bio::PackedDatabase packed(db);

  auto k40 = simt::DeviceSpec::tesla_k40();
  gpu::GpuSearch search(k40);
  auto run = search.run_msv(msv, packed, gpu::ParamPlacement::kShared);
  auto a = perf::analyze_kernel(k40, run.counters, run.plan.occ,
                                run.plan.cfg.warps_per_block);
  EXPECT_NEAR(a.alu_share + a.ldst_share + a.sync_share, 1.0, 1e-9);
  EXPECT_GT(a.warp_ops_per_cell, 0.0);
  EXPECT_LT(a.warp_ops_per_cell, 10.0);
  EXPECT_EQ(a.sync_share, 0.0) << "warp-synchronous kernel has no barriers";
  EXPECT_DOUBLE_EQ(a.smem_conflict_rate, 0.0) << "conflict-free layout";
  EXPECT_GT(a.time.gcells_per_s, 0.0);
  EXPECT_FALSE(std::string(a.bound_name()).empty());
  EXPECT_FALSE(perf::format_analysis(a).empty());
}

TEST(PerfReport, SyncKernelShowsBarrierShare) {
  auto model = hmm::paper_model(64);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  Pcg32 rng(5);
  bio::SequenceDatabase db;
  for (int i = 0; i < 10; ++i) db.add(bio::random_sequence(150, rng));
  bio::PackedDatabase packed(db);

  auto k40 = simt::DeviceSpec::tesla_k40();
  gpu::GpuSearch search(k40);
  auto run = search.run_msv_sync(msv, packed,
                                 gpu::ParamPlacement::kShared, 4);
  auto a = perf::analyze_kernel(k40, run.counters, run.plan.occ, 4);
  EXPECT_GT(a.sync_share, 0.2) << "barriers must dominate the sync kernel";
}

}  // namespace
