// Resident-daemon tests: wire protocol, framing, and full SearchServer
// integration over the in-process loopback transport (src/server/).
//
// The integration tests stand up a real server (scan pool, scheduler,
// admission queue) and prove the ISSUE acceptance criteria without a
// socket in sight:
//   (a) daemon results are bit-identical to a local HmmSearch::run_cpu;
//   (b) 16 concurrent requests coalesce into ONE database sweep;
//   (c) requests beyond the admission bound get an OVERLOAD reply
//       immediately instead of blocking;
//   (d) drain completes everything admitted and rejects new searches
//       with kShuttingDown.
// Plus the failure paths: deadline expiry, mid-request disconnect,
// malformed frames (connection torn down, server survives), and a
// multi-client stress run written for the tsan preset.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bio/seq_db_io.hpp"
#include "hmm/generator.hpp"
#include "hmm/model_db.hpp"
#include "obs/request_trace.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/workload.hpp"
#include "server/client.hpp"
#include "server/http.hpp"
#include "server/loopback.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/transport.hpp"

namespace {

using namespace finehmm;
using namespace finehmm::server;

// ------------------------------------------------------------ protocol

TEST(ServerProtocol, HeaderRoundTrip) {
  FrameHeader h;
  h.type = static_cast<std::uint8_t>(MsgType::kSearch);
  h.request_id = 0xDEADBEEF;
  h.payload_len = 12345;
  std::uint8_t buf[kFrameHeaderSize];
  encode_header(h, buf);
  const FrameHeader back = decode_header(buf);
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.type, h.type);
  EXPECT_EQ(back.request_id, h.request_id);
  EXPECT_EQ(back.payload_len, h.payload_len);
}

TEST(ServerProtocol, HeaderRejectsBadVersionAndHostileLength) {
  FrameHeader h;
  std::uint8_t buf[kFrameHeaderSize];
  h.version = 99;
  encode_header(h, buf);
  EXPECT_THROW(decode_header(buf), ProtocolError);

  h.version = kProtocolVersion;
  h.payload_len = static_cast<std::uint32_t>(kMaxPayload) + 1;
  encode_header(h, buf);
  EXPECT_THROW(decode_header(buf), ProtocolError);
}

TEST(ServerProtocol, SearchRequestRoundTripInline) {
  SearchRequest req;
  req.db_id = 7;
  req.model_kind = ModelRefKind::kInline;
  req.evalue = 0.1234567890123;  // must survive bit-exactly
  req.deadline_ms = 250;
  req.model_blob = {0x01, 0x02, 0xFF, 0x00, 0x7F};
  const SearchRequest back = decode_search_request(encode_search_request(req));
  EXPECT_EQ(back.db_id, req.db_id);
  EXPECT_EQ(back.model_kind, req.model_kind);
  EXPECT_EQ(back.evalue, req.evalue);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_EQ(back.model_blob, req.model_blob);
}

TEST(ServerProtocol, SearchRequestRoundTripPressed) {
  SearchRequest req;
  req.db_id = 0;
  req.model_kind = ModelRefKind::kPressed;
  req.model_name = "globins4";
  const SearchRequest back = decode_search_request(encode_search_request(req));
  EXPECT_EQ(back.model_kind, ModelRefKind::kPressed);
  EXPECT_EQ(back.model_name, "globins4");
}

TEST(ServerProtocol, SearchRequestRejectsTruncation) {
  // A pressed request is fully length-delimited (the name carries its
  // own length prefix), so EVERY proper prefix must be rejected — the
  // decoder may never read out of bounds or accept a short name.
  SearchRequest pressed;
  pressed.model_kind = ModelRefKind::kPressed;
  pressed.model_name = "globins4";
  const std::vector<std::uint8_t> pbytes = encode_search_request(pressed);
  for (std::size_t cut = 0; cut < pbytes.size(); ++cut) {
    std::vector<std::uint8_t> trunc(pbytes.begin(),
                                    pbytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(decode_search_request(trunc), ProtocolError) << cut;
  }

  // An inline request's blob is the remainder of the payload, so the
  // framing layer can only reject truncation of the fixed prefix (the
  // model parser catches a torn blob downstream).  The fixed prefix is
  // db_id + kind + reserved + evalue + deadline = 20 bytes; cutting
  // anywhere inside it, or leaving the blob empty, must throw.
  SearchRequest inline_req;
  inline_req.model_blob = {1, 2, 3, 4};
  const std::vector<std::uint8_t> ibytes = encode_search_request(inline_req);
  for (std::size_t cut = 0; cut <= 20; ++cut) {
    std::vector<std::uint8_t> trunc(ibytes.begin(),
                                    ibytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(decode_search_request(trunc), ProtocolError) << cut;
  }
}

TEST(ServerProtocol, SearchResultRoundTripBitExact) {
  SearchResultWire res;
  res.trace_id = 0x9f3a5c0011223344ull;
  res.db_sequences = 1000;
  res.db_residues = 123456789;
  res.ssv = {1000, 60, 1.5e6, 0.0};
  res.msv = {60, 20, 3.5e5, 0.0};
  res.vit = {20, 5, 9e4, 0.0};
  res.fwd = {5, 3, 4e4, 0.0};
  pipeline::Hit h;
  h.seq_index = 42;
  h.name = "seq_42";
  h.msv_bits = 13.25f;
  h.vit_bits = 17.125f;
  h.fwd_bits = 21.0625f;
  h.bias_bits = 0.4375f;
  h.pvalue = 3.0e-9;
  h.evalue = 3.0e-6;
  res.hits.push_back(h);
  const SearchResultWire back =
      decode_search_result(encode_search_result(res));
  EXPECT_EQ(back.trace_id, res.trace_id);
  EXPECT_EQ(back.db_sequences, res.db_sequences);
  EXPECT_EQ(back.db_residues, res.db_residues);
  EXPECT_EQ(back.msv.n_in, res.msv.n_in);
  EXPECT_EQ(back.msv.n_passed, res.msv.n_passed);
  EXPECT_EQ(back.msv.cells, res.msv.cells);
  ASSERT_EQ(back.hits.size(), 1u);
  EXPECT_EQ(back.hits[0].seq_index, h.seq_index);
  EXPECT_EQ(back.hits[0].name, h.name);
  // Bit patterns, not tolerances: the wire carries IEEE-754 images.
  EXPECT_EQ(back.hits[0].msv_bits, h.msv_bits);
  EXPECT_EQ(back.hits[0].vit_bits, h.vit_bits);
  EXPECT_EQ(back.hits[0].fwd_bits, h.fwd_bits);
  EXPECT_EQ(back.hits[0].bias_bits, h.bias_bits);
  EXPECT_EQ(back.hits[0].pvalue, h.pvalue);
  EXPECT_EQ(back.hits[0].evalue, h.evalue);
}

TEST(ServerProtocol, ErrorAndOverloadRoundTrip) {
  ErrorInfo err{ErrorCode::kDeadlineExpired, "sat queued 51ms past deadline"};
  const ErrorInfo eback = decode_error(encode_error(err));
  EXPECT_EQ(eback.code, err.code);
  EXPECT_EQ(eback.message, err.message);

  OverloadInfo ov{64};
  EXPECT_EQ(decode_overload(encode_overload(ov)).queue_capacity, 64u);
}

// ------------------------------------------------------------ framing

TEST(ServerTransport, FrameRoundTripOverLoopback) {
  LoopbackHub hub;
  auto listener = hub.listener();
  std::unique_ptr<Connection> server_end;
  std::thread acceptor([&] { server_end = listener->accept(); });
  auto client_end = hub.connect();
  acceptor.join();
  ASSERT_TRUE(server_end);
  ASSERT_TRUE(client_end);

  const std::vector<std::uint8_t> payload = {9, 8, 7, 6, 5};
  ASSERT_TRUE(send_frame(*client_end, MsgType::kSearch, 31337, payload));
  Frame f;
  ASSERT_EQ(recv_frame(*server_end, f), RecvStatus::kFrame);
  EXPECT_EQ(f.type(), MsgType::kSearch);
  EXPECT_EQ(f.header.request_id, 31337u);
  EXPECT_EQ(f.payload, payload);

  // Clean close at a frame boundary is EOF, not malformed.
  client_end->shutdown();
  EXPECT_EQ(recv_frame(*server_end, f), RecvStatus::kEof);
}

TEST(ServerTransport, TornFrameIsMalformedNotEof) {
  LoopbackHub hub;
  auto listener = hub.listener();
  std::unique_ptr<Connection> server_end;
  std::thread acceptor([&] { server_end = listener->accept(); });
  auto client_end = hub.connect();
  acceptor.join();

  // A valid header promising 100 payload bytes, then only 10, then close:
  // the stream died mid-frame.
  FrameHeader h;
  h.type = static_cast<std::uint8_t>(MsgType::kSearch);
  h.payload_len = 100;
  std::uint8_t buf[kFrameHeaderSize];
  encode_header(h, buf);
  ASSERT_TRUE(client_end->send_all(buf, kFrameHeaderSize));
  const std::uint8_t partial[10] = {};
  ASSERT_TRUE(client_end->send_all(partial, sizeof partial));
  client_end->shutdown();
  Frame f;
  EXPECT_EQ(recv_frame(*server_end, f), RecvStatus::kMalformed);
}

// ------------------------------------------------------- server fixture

/// Poll a predicate; the server's counters lag request admission by a
/// scheduler hop, so every cross-thread assertion waits.
bool eventually(const std::function<bool()>& pred, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

struct ServerFixture {
  hmm::Plan7Hmm model;
  bio::SequenceDatabase db;
  std::unique_ptr<SearchServer> srv;
  LoopbackHub hub;
  std::unique_ptr<Listener> listener;
  std::thread serve_thread;

  explicit ServerFixture(ServerConfig cfg = {}, int M = 48,
                         std::size_t n = 120)
      : model(hmm::paper_model(M)) {
    pipeline::WorkloadSpec spec;
    spec.db.name = "served";
    spec.db.n_sequences = n;
    spec.db.log_length_mu = 4.4;
    spec.db.log_length_sigma = 0.4;
    spec.db.seed = 99;
    spec.homolog_fraction = 0.05;
    db = pipeline::make_workload(model, spec);
    cfg.scan_threads = 2;  // the CI box is small; keep the pool tight
    srv = std::make_unique<SearchServer>(cfg);
    EXPECT_EQ(srv->add_database(db), 0u);
  }

  ~ServerFixture() { stop(); }

  void start() {
    listener = hub.listener();
    serve_thread = std::thread([this] { srv->serve(*listener); });
  }

  void stop() {
    if (srv) srv->begin_drain();
    if (serve_thread.joinable()) serve_thread.join();
  }

  BlockingClient connect() { return BlockingClient(hub.connect()); }

  /// The local ground truth the daemon must reproduce bit for bit.
  pipeline::SearchResult local_reference(double evalue = 10.0) const {
    pipeline::Thresholds thr;
    thr.report_evalue = evalue;
    const pipeline::HmmSearch search(model, thr);
    return search.run_cpu(db);
  }

  /// Calibration the client sends along so daemon and reference share
  /// the exact same ModelStats (both would otherwise recalibrate
  /// deterministically — sending them just makes the contract explicit).
  stats::ModelStats calibration() const {
    return pipeline::HmmSearch(model).model_stats();
  }
};

void expect_remote_matches_local(const RemoteResult& rr,
                                 const pipeline::SearchResult& ref,
                                 const bio::SequenceDatabase& db) {
  ASSERT_EQ(rr.status, ClientStatus::kOk);
  EXPECT_EQ(rr.result.db_sequences, db.size());
  EXPECT_EQ(rr.result.ssv.n_in, ref.ssv.n_in);
  EXPECT_EQ(rr.result.ssv.n_passed, ref.ssv.n_passed);
  EXPECT_EQ(rr.result.msv.n_in, ref.msv.n_in);
  EXPECT_EQ(rr.result.msv.n_passed, ref.msv.n_passed);
  EXPECT_EQ(rr.result.msv.cells, ref.msv.cells);
  EXPECT_EQ(rr.result.vit.n_passed, ref.vit.n_passed);
  EXPECT_EQ(rr.result.fwd.n_passed, ref.fwd.n_passed);
  ASSERT_EQ(rr.result.hits.size(), ref.hits.size());
  for (std::size_t i = 0; i < ref.hits.size(); ++i) {
    const pipeline::Hit& a = ref.hits[i];
    const pipeline::Hit& b = rr.result.hits[i];
    EXPECT_EQ(a.seq_index, b.seq_index) << i;
    EXPECT_EQ(a.name, b.name) << i;
    // operator== on floats: the wire carries exact bit patterns.
    EXPECT_EQ(a.msv_bits, b.msv_bits) << i;
    EXPECT_EQ(a.vit_bits, b.vit_bits) << i;
    EXPECT_EQ(a.fwd_bits, b.fwd_bits) << i;
    EXPECT_EQ(a.bias_bits, b.bias_bits) << i;
    EXPECT_EQ(a.pvalue, b.pvalue) << i;
    EXPECT_EQ(a.evalue, b.evalue) << i;
  }
}

// --------------------------------------------- (a) bit-identical results

TEST(SearchServer, RemoteHitsBitIdenticalToLocalRunCpu) {
  ServerFixture fx;
  fx.start();
  const pipeline::SearchResult ref = fx.local_reference();
  const stats::ModelStats cal = fx.calibration();

  BlockingClient client = fx.connect();
  EXPECT_TRUE(client.ping());
  const RemoteResult rr = client.search(0, fx.model, &cal);
  expect_remote_matches_local(rr, ref, fx.db);
  ASSERT_FALSE(ref.hits.empty()) << "workload produced no hits; the "
                                    "bit-identity check would be vacuous";

  // Omitting the calibration must not change anything: the daemon
  // recalibrates deterministically with the same options.
  const RemoteResult rr2 = client.search(0, fx.model, nullptr);
  expect_remote_matches_local(rr2, ref, fx.db);
}

TEST(SearchServer, PressedModelMatchesInlineSearch) {
  ServerConfig cfg;
  ServerFixture fx(cfg);
  const std::string lib = "/tmp/finehmm_test_server_models.fhpdb";
  hmm::write_model_db_file(lib, {{fx.model, std::nullopt}});
  EXPECT_EQ(fx.srv->add_model_library(lib), 1u);
  std::remove(lib.c_str());
  fx.start();

  const pipeline::SearchResult ref = fx.local_reference();
  BlockingClient client = fx.connect();
  const RemoteResult rr = client.search_pressed(0, fx.model.name());
  expect_remote_matches_local(rr, ref, fx.db);

  const RemoteResult missing = client.search_pressed(0, "no_such_model");
  ASSERT_EQ(missing.status, ClientStatus::kError);
  EXPECT_EQ(missing.error.code, ErrorCode::kUnknownModel);
}

TEST(SearchServer, UnknownDatabaseIsAnErrorNotACrash) {
  ServerFixture fx;
  fx.start();
  BlockingClient client = fx.connect();
  const RemoteResult rr = client.search(42, fx.model, nullptr);
  ASSERT_EQ(rr.status, ClientStatus::kError);
  EXPECT_EQ(rr.error.code, ErrorCode::kUnknownDatabase);
  EXPECT_TRUE(client.ping()) << "connection must survive a bad request";
}

// ------------------------------------------------- (b) coalesced sweeps

TEST(SearchServer, SixteenConcurrentRequestsShareOneSweep) {
  ServerConfig cfg;
  cfg.start_paused = true;  // stage all 16 in the queue before any sweep
  cfg.max_batch = 16;
  ServerFixture fx(cfg);
  fx.start();
  const pipeline::SearchResult ref = fx.local_reference();
  const stats::ModelStats cal = fx.calibration();

  constexpr std::size_t kClients = 16;
  std::vector<RemoteResult> results(kClients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      BlockingClient client = fx.connect();
      results[c] = client.search(0, fx.model, &cal);
    });
  }
  ASSERT_TRUE(eventually(
      [&] { return fx.srv->stats().requests_admitted == kClients; }))
      << "admitted=" << fx.srv->stats().requests_admitted;
  fx.srv->set_paused(false);
  for (std::thread& t : threads) t.join();

  for (std::size_t c = 0; c < kClients; ++c) {
    SCOPED_TRACE(c);
    expect_remote_matches_local(results[c], ref, fx.db);
  }

  // The acceptance criterion: 16 concurrent requests cost fewer database
  // sweeps than 16 sequential ones.  Staged behind a paused scheduler
  // they cost exactly ONE.
  const ServerStats st = fx.srv->stats();
  EXPECT_EQ(st.requests_completed, kClients);
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.db_sweeps, 1u);
  EXPECT_EQ(st.max_batch_size, kClients);

  // And the same fact through the telemetry schema: one sweep scoring 16
  // queries, visible on the merged msv-stage counters.
  const obs::ScanTelemetry tel = fx.srv->telemetry();
  EXPECT_EQ(tel.engine, "server");
  double sweeps = 0.0, queries = 0.0;
  for (const obs::StageTelemetry& stg : tel.stages)
    for (const auto& [key, value] : stg.counters) {
      if (key == "batch.sweeps") sweeps += value;
      if (key == "batch.queries") queries += value;
    }
  EXPECT_EQ(sweeps, 1.0);
  EXPECT_EQ(queries, static_cast<double>(kClients));
}

// ------------------------------------------------- (c) overload shedding

TEST(SearchServer, AdmissionBoundShedsWithOverloadReplyNotBlocking) {
  ServerConfig cfg;
  cfg.start_paused = true;  // nothing drains: the queue must fill
  cfg.admission_capacity = 2;
  ServerFixture fx(cfg);
  fx.start();
  const stats::ModelStats cal = fx.calibration();

  constexpr std::size_t kClients = 3;
  std::vector<RemoteResult> results(kClients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      BlockingClient client = fx.connect();
      results[c] = client.search(0, fx.model, &cal);
    });
  }
  // The shed reply arrives while the scheduler is still frozen — that IS
  // the non-blocking guarantee.  (eventually() bounds the wait; a
  // blocking admission path would time this out.)
  ASSERT_TRUE(eventually([&] {
    const ServerStats st = fx.srv->stats();
    return st.requests_admitted == 2 && st.requests_overloaded == 1;
  })) << "admitted=" << fx.srv->stats().requests_admitted
      << " overloaded=" << fx.srv->stats().requests_overloaded;
  fx.srv->set_paused(false);
  for (std::thread& t : threads) t.join();

  std::size_t ok = 0, shed = 0;
  for (const RemoteResult& rr : results) {
    if (rr.status == ClientStatus::kOk) ++ok;
    if (rr.status == ClientStatus::kOverloaded) {
      ++shed;
      EXPECT_EQ(rr.overload.queue_capacity, 2u);
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(shed, 1u);
}

// ------------------------------------------------------- (d) drain

TEST(SearchServer, DrainFinishesAdmittedWorkAndRejectsNew) {
  ServerConfig cfg;
  cfg.start_paused = true;
  // One sweep per request: the drain must chew through kAdmitted
  // sequential sweeps, which keeps the server alive long enough that the
  // late client's rejection below is answered deterministically.
  cfg.max_batch = 1;
  ServerFixture fx(cfg);
  fx.start();
  const pipeline::SearchResult ref = fx.local_reference();
  const stats::ModelStats cal = fx.calibration();

  // The late client connects BEFORE the drain starts (afterwards the
  // listener is closed), and sends its search only once draining_ is set.
  BlockingClient late = fx.connect();

  constexpr std::size_t kAdmitted = 6;
  std::vector<RemoteResult> admitted_rr(kAdmitted);
  std::vector<std::thread> admitted;
  for (std::size_t c = 0; c < kAdmitted; ++c) {
    admitted.emplace_back([&, c] {
      BlockingClient client = fx.connect();
      admitted_rr[c] = client.search(0, fx.model, &cal);
    });
  }
  ASSERT_TRUE(eventually(
      [&] { return fx.srv->stats().requests_admitted == kAdmitted; }));

  fx.srv->begin_drain();  // also releases the pause
  EXPECT_TRUE(fx.srv->draining());

  // New search on a live connection: rejected, not queued.
  const RemoteResult rejected = late.search(0, fx.model, &cal);
  ASSERT_EQ(rejected.status, ClientStatus::kError);
  EXPECT_EQ(rejected.error.code, ErrorCode::kShuttingDown);

  // Already-admitted work still completes, bit-identically.
  for (std::thread& t : admitted) t.join();
  for (std::size_t c = 0; c < kAdmitted; ++c) {
    SCOPED_TRACE(c);
    expect_remote_matches_local(admitted_rr[c], ref, fx.db);
  }

  fx.serve_thread.join();  // serve() returns once drained
  const ServerStats st = fx.srv->stats();
  EXPECT_EQ(st.requests_completed, kAdmitted);
  EXPECT_EQ(st.requests_rejected_draining, 1u);

  // The listener is gone: new connections are refused.
  EXPECT_EQ(fx.hub.connect(), nullptr);
}

// ------------------------------------------------- deadline expiry

TEST(SearchServer, QueuedPastDeadlineIsShedWithDeadlineExpired) {
  ServerConfig cfg;
  cfg.start_paused = true;
  ServerFixture fx(cfg);
  fx.start();
  const stats::ModelStats cal = fx.calibration();

  RemoteResult rr;
  std::thread t([&] {
    BlockingClient client = fx.connect();
    rr = client.search(0, fx.model, &cal, 10.0, /*deadline_ms=*/1);
  });
  ASSERT_TRUE(
      eventually([&] { return fx.srv->stats().requests_admitted == 1; }));
  // Let the 1ms deadline lapse while the scheduler is frozen.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fx.srv->set_paused(false);
  t.join();

  ASSERT_EQ(rr.status, ClientStatus::kError);
  EXPECT_EQ(rr.error.code, ErrorCode::kDeadlineExpired);
  EXPECT_TRUE(eventually(
      [&] { return fx.srv->stats().requests_deadline_expired == 1; }));
}

// --------------------------------------- mid-request disconnect

TEST(SearchServer, ClientGoneBeforeReplyDropsResponseServerSurvives) {
  ServerConfig cfg;
  cfg.start_paused = true;
  ServerFixture fx(cfg);
  fx.start();
  const stats::ModelStats cal = fx.calibration();

  RemoteResult rr;
  BlockingClient doomed = fx.connect();
  std::thread t([&] { rr = doomed.search(0, fx.model, &cal); });
  ASSERT_TRUE(
      eventually([&] { return fx.srv->stats().requests_admitted == 1; }));
  doomed.connection().shutdown();  // sever while the request is queued
  t.join();
  EXPECT_EQ(rr.status, ClientStatus::kDisconnected);

  fx.srv->set_paused(false);
  ASSERT_TRUE(eventually(
      [&] { return fx.srv->stats().responses_dropped == 1; }));

  // The sweep itself completed; only the reply had nowhere to go.
  EXPECT_EQ(fx.srv->stats().requests_completed, 1u);
  BlockingClient alive = fx.connect();
  EXPECT_TRUE(alive.ping()) << "server must outlive a vanished client";
}

// --------------------------------------------- malformed frames

TEST(SearchServer, MalformedBytesTearDownThatConnectionOnly) {
  ServerFixture fx;
  fx.start();

  // Garbage version byte: the framing layer rejects it before any
  // payload allocation.
  auto garbage = fx.hub.connect();
  ASSERT_TRUE(garbage);
  const std::uint8_t junk[16] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(garbage->send_all(junk, sizeof junk));
  ASSERT_TRUE(
      eventually([&] { return fx.srv->stats().frames_malformed == 1; }));
  // The server hung up on us: the next read sees EOF.
  std::uint8_t scratch[8];
  EXPECT_EQ(garbage->recv_some(scratch, sizeof scratch), 0u);

  // A frame torn mid-payload counts too.
  auto torn = fx.hub.connect();
  ASSERT_TRUE(torn);
  FrameHeader h;
  h.type = static_cast<std::uint8_t>(MsgType::kSearch);
  h.payload_len = 4096;
  std::uint8_t buf[kFrameHeaderSize];
  encode_header(h, buf);
  ASSERT_TRUE(torn->send_all(buf, kFrameHeaderSize));
  torn->shutdown();
  ASSERT_TRUE(
      eventually([&] { return fx.srv->stats().frames_malformed == 2; }));

  // Undecodable SEARCH payloads are softer: the frame itself was whole,
  // so the server answers kBadRequest and keeps the connection.
  BlockingClient client = fx.connect();
  ASSERT_TRUE(
      send_frame(client.connection(), MsgType::kSearch, 5, {1, 2, 3}));
  Frame reply;
  ASSERT_EQ(recv_frame(client.connection(), reply), RecvStatus::kFrame);
  EXPECT_EQ(reply.type(), MsgType::kError);
  EXPECT_EQ(decode_error(reply.payload).code, ErrorCode::kBadRequest);
  EXPECT_TRUE(client.ping());

  // Through it all, well-behaved clients never noticed.
  BlockingClient good = fx.connect();
  EXPECT_TRUE(good.ping());
}

// ------------------------------------------------------- STATS verb

TEST(SearchServer, StatsVerbReportsSchemaAndCounts) {
  ServerFixture fx;
  fx.start();
  const stats::ModelStats cal = fx.calibration();
  BlockingClient client = fx.connect();
  const RemoteResult rr = client.search(0, fx.model, &cal);
  ASSERT_EQ(rr.status, ClientStatus::kOk);

  // The reply leaves before the scheduler finishes the request's trace
  // (serialize time is part of it), so poll until the ring has it.
  ASSERT_NE(rr.result.trace_id, 0u);
  const std::string id_hex = obs::trace_id_hex(rr.result.trace_id);
  std::string json;
  ASSERT_TRUE(eventually([&] {
    const std::optional<std::string> s = client.stats_json();
    if (!s.has_value()) return false;
    json = *s;
    return json.find(id_hex) != std::string::npos;
  }));
  EXPECT_NE(json.find("finehmm.server_stats.v2"), std::string::npos);
  EXPECT_NE(json.find("\"requests_completed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"engine\": \"server\""), std::string::npos);

  // v2 additions: the latency histograms saw the request, and its trace
  // landed in the ring, findable by the id the reply carried.
  EXPECT_NE(json.find("\"latency\": {"), std::string::npos);
  EXPECT_NE(json.find("\"e2e\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"sweep\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p99_seconds\": "), std::string::npos);
  EXPECT_NE(json.find("\"recent_traces\": ["), std::string::npos);
  EXPECT_NE(json.find("\"verb\": \"SEARCH\""), std::string::npos);
}

// --------------------------------------------------- request tracing

TEST(SearchServer, EveryReplyCarriesADistinctTraceId) {
  ServerFixture fx;
  fx.start();
  const stats::ModelStats cal = fx.calibration();
  BlockingClient client = fx.connect();

  const RemoteResult a = client.search(0, fx.model, &cal);
  const RemoteResult b = client.search(0, fx.model, &cal);
  ASSERT_EQ(a.status, ClientStatus::kOk);
  ASSERT_EQ(b.status, ClientStatus::kOk);
  EXPECT_NE(a.result.trace_id, 0u);
  EXPECT_NE(b.result.trace_id, 0u);
  EXPECT_NE(a.result.trace_id, b.result.trace_id);

  // Both ids are queryable over the wire once their traces complete,
  // with the span breakdown summing (approximately) to the total.
  ASSERT_TRUE(eventually([&] {
    const std::optional<std::string> s = client.stats_json();
    return s.has_value() &&
           s->find(obs::trace_id_hex(a.result.trace_id)) !=
               std::string::npos &&
           s->find(obs::trace_id_hex(b.result.trace_id)) !=
               std::string::npos;
  }));
  const std::vector<obs::RequestTrace> traces =
      fx.srv->recent_traces();
  ASSERT_GE(traces.size(), 2u);
  for (const obs::RequestTrace& t : traces) {
    EXPECT_GT(t.total_seconds, 0.0);
    EXPECT_GE(t.sweep_seconds, 0.0);
    EXPECT_LE(t.queue_seconds + t.coalesce_seconds + t.sweep_seconds,
              t.total_seconds + 1e-6);
    EXPECT_GE(t.batch_size, 1u);
    EXPECT_STREQ(t.verb, "SEARCH");
  }
}

TEST(RequestTrace, ChromeTraceExportRoundTrips) {
  // The server-side trace ring renders in the same trace_event JSON the
  // in-process Recorder emits, one tid per request.
  obs::RequestTrace t;
  t.trace_id = obs::next_trace_id();
  t.request_id = 7;
  t.verb = "SEARCH";
  t.start_ns = 1500000;  // 1.5 ms after server start
  t.queue_seconds = 0.001;
  t.coalesce_seconds = 0.002;
  t.sweep_seconds = 0.010;
  t.serialize_seconds = 0.0005;
  t.total_seconds = 0.0135;
  t.stage_seconds[static_cast<int>(obs::Stage::kMsv)] = 0.004;
  t.stage_seconds[static_cast<int>(obs::Stage::kVit)] = 0.003;
  t.batch_size = 3;

  obs::RequestTrace u = t;
  u.trace_id = obs::next_trace_id();
  u.verb = "SCAN";
  u.queue_seconds = 0.0;  // zero-length spans are omitted, not emitted

  std::ostringstream os;
  obs::write_chrome_trace(os, {t, u});
  const std::string json = os.str();

  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  // One thread-name metadata event per request, labelled verb + id.
  EXPECT_NE(json.find("\"SEARCH " + obs::trace_id_hex(t.trace_id) + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"SCAN " + obs::trace_id_hex(u.trace_id) + "\""),
            std::string::npos);
  // Complete spans for every nonzero phase, stage shares included.
  for (const char* name : {"queue", "coalesce", "sweep", "msv", "vit",
                           "serialize"}) {
    EXPECT_NE(json.find("\"name\": \"" + std::string(name) + "\""),
              std::string::npos)
        << name;
  }
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"batch_size\": 3"), std::string::npos);
  // Request t emits 6 spans (4 phases + 2 stage shares); u omits its
  // zero-length queue span: 5.  Count the "X" events.
  std::size_t x_events = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\": \"X\"", pos)) != std::string::npos; ++pos)
    ++x_events;
  EXPECT_EQ(x_events, 11u);

  // The STATS-verb JSON rendering of the same trace carries the stage
  // breakdown under schema-stable keys.
  std::ostringstream ts;
  obs::write_trace_json(ts, t);
  const std::string tj = ts.str();
  EXPECT_NE(tj.find("\"trace_id\": \"" + obs::trace_id_hex(t.trace_id)),
            std::string::npos);
  EXPECT_NE(tj.find("\"stage_seconds\": {"), std::string::npos);
  EXPECT_NE(tj.find("\"msv\": 0.004"), std::string::npos);
  EXPECT_NE(tj.find("\"total_seconds\": 0.0135"), std::string::npos);
}

// ------------------------------------------------------ HTTP endpoint

/// One GET over the in-process loopback, served by the same
/// http_serve_connection the TCP endpoint thread uses.
std::string http_get(SearchServer& srv, const std::string& target) {
  LoopbackHub hub;
  auto listener = hub.listener();
  std::thread server([&] {
    std::unique_ptr<Connection> conn = listener->accept();
    if (conn)
      http_serve_connection(
          *conn, [&srv](const std::string& p) { return srv.handle_http(p); });
  });
  std::unique_ptr<Connection> client = hub.connect();
  const std::string req = "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
  EXPECT_TRUE(client->send_all(req.data(), req.size()));
  std::string resp;
  char buf[1024];
  for (;;) {
    const std::size_t n = client->recv_some(buf, sizeof buf);
    if (n == 0) break;
    resp.append(buf, n);
  }
  server.join();
  return resp;
}

TEST(HttpEndpoint, MetricsHealthzAndStatuszRoutes) {
  ServerFixture fx;
  fx.start();
  const stats::ModelStats cal = fx.calibration();
  BlockingClient client = fx.connect();
  const RemoteResult rr = client.search(0, fx.model, &cal);
  ASSERT_EQ(rr.status, ClientStatus::kOk);
  // Histograms record before the ring push; waiting on the ring
  // guarantees both surfaces have seen the request.
  ASSERT_TRUE(eventually([&] { return !fx.srv->recent_traces().empty(); }));
  EXPECT_GE(fx.srv->latency_histogram().count(), 1u);

  const std::string metrics = http_get(*fx.srv, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  // The server families, each declared before its samples.
  for (const char* family :
       {"finehmm_up", "finehmm_uptime_seconds", "finehmm_queue_depth",
        "finehmm_server_events_total", "finehmm_request_latency_seconds",
        "finehmm_queue_wait_seconds", "finehmm_sweep_seconds"}) {
    EXPECT_NE(metrics.find("# TYPE " + std::string(family) + " "),
              std::string::npos)
        << family;
  }
  EXPECT_NE(metrics.find("finehmm_up 1"), std::string::npos);
  EXPECT_NE(metrics.find(
                "finehmm_server_events_total{event=\"requests_completed\"} "
                "1"),
            std::string::npos);
  EXPECT_NE(metrics.find(
                "finehmm_request_latency_seconds{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(metrics.find("finehmm_request_latency_seconds_count 1"),
            std::string::npos);

  // The acceptance contract: /metrics p99 and the STATS-verb p99 are the
  // SAME number (one quantile implementation, one formatting).
  const std::optional<std::string> stats = client.stats_json();
  ASSERT_TRUE(stats.has_value());
  const std::string needle =
      "finehmm_request_latency_seconds{quantile=\"0.99\"} ";
  std::size_t at = metrics.find(needle);
  ASSERT_NE(at, std::string::npos);
  at += needle.size();
  const std::string p99_metrics =
      metrics.substr(at, metrics.find('\n', at) - at);
  EXPECT_NE(stats->find("\"p99_seconds\": " + p99_metrics),
            std::string::npos)
      << "/metrics p99 " << p99_metrics << " not found in STATS JSON";

  // /healthz says ok while serving, /statusz is the human surface.
  const std::string health = http_get(*fx.srv, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string statusz = http_get(*fx.srv, "/statusz");
  EXPECT_NE(statusz.find("finehmmd status"), std::string::npos);
  EXPECT_NE(statusz.find("latency e2e (ms):"), std::string::npos);
  EXPECT_NE(statusz.find(obs::trace_id_hex(rr.result.trace_id)),
            std::string::npos);

  const std::string missing = http_get(*fx.srv, "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  // Query strings are stripped; non-GET methods are refused politely.
  const std::string with_query = http_get(*fx.srv, "/healthz?verbose=1");
  EXPECT_NE(with_query.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST(HttpEndpoint, HealthzFlipsTo503WhenDraining) {
  ServerFixture fx;
  fx.start();
  EXPECT_NE(http_get(*fx.srv, "/healthz").find("200 OK"),
            std::string::npos);
  fx.srv->begin_drain();
  const std::string resp = http_get(*fx.srv, "/healthz");
  EXPECT_NE(resp.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(resp.find("draining"), std::string::npos);
  EXPECT_NE(http_get(*fx.srv, "/metrics").find("finehmm_up 0"),
            std::string::npos);
  fx.stop();
}

TEST(HttpEndpoint, EndpointThreadServesAndStopsCleanly) {
  // The real HttpEndpoint wrapper: accept loop on its own thread over a
  // loopback listener, stopped by close() + join, exactly as finehmmd
  // drives it over TCP.
  ServerFixture fx;
  fx.start();
  LoopbackHub http_hub;
  SearchServer& srv = *fx.srv;
  HttpEndpoint endpoint(
      http_hub.listener(),
      [&srv](const std::string& p) { return srv.handle_http(p); });

  for (int i = 0; i < 3; ++i) {
    std::unique_ptr<Connection> conn = http_hub.connect();
    const std::string req = "GET /healthz HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(conn->send_all(req.data(), req.size()));
    std::string resp;
    char buf[512];
    for (;;) {
      const std::size_t n = conn->recv_some(buf, sizeof buf);
      if (n == 0) break;
      resp.append(buf, n);
    }
    EXPECT_NE(resp.find("200 OK"), std::string::npos) << i;
  }
  endpoint.stop();  // idempotent; the destructor would also do this
}

// -------------------------------------------------------- SCAN verb

/// A small pressed library with stored calibration, written to a temp
/// file so add_model_library pays no calibration at load.
std::string write_scan_library(std::vector<hmm::Plan7Hmm>& models_out,
                               int n_models) {
  std::vector<hmm::ModelEntry> entries;
  for (int i = 0; i < n_models; ++i) {
    hmm::RandomHmmSpec spec;
    spec.length = 40 + 17 * i;
    spec.seed = 900 + static_cast<std::uint64_t>(i);
    hmm::ModelEntry e;
    e.model = hmm::generate_hmm(spec);
    e.model.set_name("SCAN" + std::to_string(i));
    e.model_stats = pipeline::HmmSearch(e.model).model_stats();
    models_out.push_back(e.model);
    entries.push_back(std::move(e));
  }
  const std::string path = "/tmp/finehmm_test_server_scanlib.fhpdb";
  hmm::write_model_db_file(path, entries);
  return path;
}

TEST(SearchServer, ScanVerbMatchesPerModelSearchesBitForBit) {
  ServerFixture fx;
  std::vector<hmm::Plan7Hmm> models;
  const std::string lib = write_scan_library(models, 5);
  EXPECT_EQ(fx.srv->add_model_library(lib), 5u);
  std::remove(lib.c_str());
  fx.start();

  BlockingClient client = fx.connect();
  const RemoteScanResult rr = client.scan(0);
  ASSERT_EQ(rr.status, ClientStatus::kOk);
  EXPECT_EQ(rr.result.db_sequences, fx.db.size());
  ASSERT_EQ(rr.result.models.size(), models.size());
  EXPECT_GE(rr.result.fuse_groups, 1u);
  EXPECT_EQ(rr.result.fused_models, models.size());
  EXPECT_GT(rr.result.lane_occupancy, 0.0);
  EXPECT_LE(rr.result.lane_occupancy, 1.0);

  // Ground truth: one local run_cpu per model with the library's stats.
  for (std::size_t m = 0; m < models.size(); ++m) {
    const auto& mh = rr.result.models[m];
    EXPECT_EQ(mh.model_name, models[m].name());
    const pipeline::HmmSearch local(
        models[m], pipeline::HmmSearch(models[m]).model_stats());
    const pipeline::SearchResult ref = local.run_cpu(fx.db);
    ASSERT_EQ(mh.hits.size(), ref.hits.size()) << "model=" << m;
    for (std::size_t i = 0; i < ref.hits.size(); ++i) {
      EXPECT_EQ(mh.hits[i].seq_index, ref.hits[i].seq_index);
      EXPECT_EQ(mh.hits[i].name, ref.hits[i].name);
      EXPECT_EQ(mh.hits[i].msv_bits, ref.hits[i].msv_bits);
      EXPECT_EQ(mh.hits[i].vit_bits, ref.hits[i].vit_bits);
      EXPECT_EQ(mh.hits[i].fwd_bits, ref.hits[i].fwd_bits);
      EXPECT_EQ(mh.hits[i].pvalue, ref.hits[i].pvalue);
      EXPECT_EQ(mh.hits[i].evalue, ref.hits[i].evalue);
    }
  }

  // A tighter request threshold prunes each model's hit list to the
  // E-value-sorted prefix.
  const RemoteScanResult tight = client.scan(0, 1e-3);
  ASSERT_EQ(tight.status, ClientStatus::kOk);
  for (std::size_t m = 0; m < models.size(); ++m) {
    const auto& all = rr.result.models[m].hits;
    const auto& few = tight.result.models[m].hits;
    EXPECT_LE(few.size(), all.size());
    for (std::size_t i = 0; i < few.size(); ++i) {
      EXPECT_LE(few[i].evalue, 1e-3);
      EXPECT_EQ(few[i].seq_index, all[i].seq_index);
    }
  }

  // The STATS verb exposes the scan counters and (via the embedded
  // telemetry) the fuse.* lane-occupancy counters.
  const std::optional<std::string> json = client.stats_json();
  ASSERT_TRUE(json.has_value());
  EXPECT_NE(json->find("\"scan_requests\": 2"), std::string::npos);
  EXPECT_NE(json->find("\"scan_sweeps\": 2"), std::string::npos);
  EXPECT_NE(json->find("fuse.lane_occupancy"), std::string::npos);
  EXPECT_NE(json->find("fuse.models_per_group"), std::string::npos);
}

TEST(SearchServer, ScanWithoutLibraryOrDatabaseIsAnError) {
  ServerFixture fx;
  fx.start();
  BlockingClient client = fx.connect();

  // No library loaded: nothing to score.
  const RemoteScanResult none = client.scan(0);
  ASSERT_EQ(none.status, ClientStatus::kError);
  EXPECT_EQ(none.error.code, ErrorCode::kUnknownModel);

  // Unknown database id.
  const RemoteScanResult bad_db = client.scan(7);
  ASSERT_EQ(bad_db.status, ClientStatus::kError);
  EXPECT_EQ(bad_db.error.code, ErrorCode::kUnknownDatabase);
}

TEST(ServerProtocol, ScanRequestAndResultRoundTrip) {
  ScanRequest req;
  req.db_id = 3;
  req.evalue = 0.125;
  req.deadline_ms = 900;
  const ScanRequest back = decode_scan_request(encode_scan_request(req));
  EXPECT_EQ(back.db_id, req.db_id);
  EXPECT_EQ(back.evalue, req.evalue);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);

  ScanResultWire res;
  res.trace_id = 0x0123456789abcdefull;
  res.db_sequences = 11;
  res.db_residues = 4242;
  res.fuse_groups = 2;
  res.fused_models = 9;
  res.lane_occupancy = 0.875;
  ScanModelHits mh;
  mh.model_name = "PF0001";
  pipeline::Hit h;
  h.seq_index = 5;
  h.name = "seq5";
  h.msv_bits = 12.5f;
  h.vit_bits = 11.25f;
  h.fwd_bits = 13.75f;
  h.bias_bits = 0.5f;
  h.pvalue = 1e-7;
  h.evalue = 1e-4;
  mh.hits.push_back(h);
  res.models.push_back(mh);
  res.models.push_back(ScanModelHits{"PF0002", {}});

  const ScanResultWire out = decode_scan_result(encode_scan_result(res));
  EXPECT_EQ(out.trace_id, res.trace_id);
  EXPECT_EQ(out.db_sequences, res.db_sequences);
  EXPECT_EQ(out.db_residues, res.db_residues);
  EXPECT_EQ(out.fuse_groups, res.fuse_groups);
  EXPECT_EQ(out.fused_models, res.fused_models);
  EXPECT_EQ(out.lane_occupancy, res.lane_occupancy);
  ASSERT_EQ(out.models.size(), 2u);
  EXPECT_EQ(out.models[0].model_name, "PF0001");
  ASSERT_EQ(out.models[0].hits.size(), 1u);
  EXPECT_EQ(out.models[0].hits[0].seq_index, h.seq_index);
  EXPECT_EQ(out.models[0].hits[0].name, h.name);
  EXPECT_EQ(out.models[0].hits[0].fwd_bits, h.fwd_bits);
  EXPECT_EQ(out.models[0].hits[0].evalue, h.evalue);
  EXPECT_TRUE(out.models[1].hits.empty());

  // Truncation must raise, not overrun.
  auto bytes = encode_scan_result(res);
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(decode_scan_result(bytes), ProtocolError);
}

// ------------------------------------------- multi-client stress (tsan)

// Written for the tsan preset: searches, pings, STATS, disconnects and
// malformed bytes all interleave across threads against one server.
// Plain builds get the functional half: every search bit-identical.
TEST(SearchServerStress, InterleavedClientsStayConsistent) {
  ServerConfig cfg;
  cfg.coalesce_window_ms = 1;
  ServerFixture fx(cfg, /*M=*/40, /*n=*/80);
  fx.start();
  const pipeline::SearchResult ref = fx.local_reference();
  const stats::ModelStats cal = fx.calibration();

  constexpr std::size_t kSearchers = 4;
  constexpr std::size_t kRounds = 3;
  std::vector<std::thread> crew;
  std::vector<int> ok_counts(kSearchers, 0);
  for (std::size_t c = 0; c < kSearchers; ++c) {
    crew.emplace_back([&, c] {
      BlockingClient client = fx.connect();
      for (std::size_t r = 0; r < kRounds; ++r) {
        const RemoteResult rr = client.search(0, fx.model, &cal);
        if (rr.status != ClientStatus::kOk) return;
        if (rr.result.hits.size() != ref.hits.size()) return;
        bool same = true;
        for (std::size_t i = 0; i < ref.hits.size(); ++i)
          same = same && rr.result.hits[i].fwd_bits == ref.hits[i].fwd_bits &&
                 rr.result.hits[i].evalue == ref.hits[i].evalue;
        if (!same) return;
        ++ok_counts[c];
      }
    });
  }
  crew.emplace_back([&] {  // health prober
    BlockingClient client = fx.connect();
    for (int i = 0; i < 6; ++i) {
      if (!client.ping()) return;
      client.stats_json();
    }
  });
  crew.emplace_back([&] {  // rude peer: malformed bytes mid-stress
    auto conn = fx.hub.connect();
    if (!conn) return;
    const std::uint8_t junk[12] = {0xEE};
    conn->send_all(junk, sizeof junk);
  });
  for (std::thread& t : crew) t.join();

  for (std::size_t c = 0; c < kSearchers; ++c)
    EXPECT_EQ(ok_counts[c], static_cast<int>(kRounds)) << "client " << c;
  const ServerStats st = fx.srv->stats();
  EXPECT_EQ(st.requests_completed, kSearchers * kRounds);
  EXPECT_EQ(st.requests_failed, 0u);

  fx.stop();
  // Post-drain the accounting must balance: everything admitted was
  // either completed (a dropped response still counts its request as
  // completed), shed on deadline, or failed — never lost.
  const ServerStats fin = fx.srv->stats();
  EXPECT_EQ(fin.requests_admitted,
            fin.requests_completed + fin.requests_deadline_expired +
                fin.requests_failed);
}

}  // namespace
