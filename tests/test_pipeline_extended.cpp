// Extended pipeline features: auto placement, multi-GPU pipeline, hit
// alignments, multi-model search.
#include <gtest/gtest.h>

#include "gpu/placement_policy.hpp"
#include "hmm/generator.hpp"
#include "pipeline/multi_search.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/workload.hpp"

namespace {

using namespace finehmm;

struct ExtFixture {
  hmm::Plan7Hmm model;
  bio::SequenceDatabase db;
  bio::PackedDatabase packed;

  explicit ExtFixture(int M = 80, std::size_t n = 300, double hom = 0.04)
      : model(hmm::paper_model(M)) {
    pipeline::WorkloadSpec spec;
    spec.db.n_sequences = n;
    spec.db.log_length_mu = 4.8;
    spec.homolog_fraction = hom;
    spec.db.seed = 1001;
    db = pipeline::make_workload(model, spec);
    packed = bio::PackedDatabase(db);
  }
};

TEST(PlacementPolicy, MatchesPaperThresholdOnK40) {
  auto k40 = simt::DeviceSpec::tesla_k40();
  // Fig. 9: shared wins for MSV up to ~1002, global beyond.
  for (int M : {48, 100, 200, 400, 800}) {
    auto c = gpu::choose_placement(gpu::Stage::kMsv, M, k40);
    EXPECT_EQ(c.placement, gpu::ParamPlacement::kShared) << "M=" << M;
  }
  for (int M : {1528, 2405}) {
    auto c = gpu::choose_placement(gpu::Stage::kMsv, M, k40);
    EXPECT_EQ(c.placement, gpu::ParamPlacement::kGlobal) << "M=" << M;
  }
}

TEST(PlacementPolicy, AlwaysFeasibleForPaperSizes) {
  for (const auto& dev :
       {simt::DeviceSpec::tesla_k40(), simt::DeviceSpec::gtx580()}) {
    for (int M : hmm::kPaperModelSizes) {
      for (auto stage : {gpu::Stage::kMsv, gpu::Stage::kViterbi}) {
        auto c = gpu::choose_placement(stage, M, dev);
        EXPECT_TRUE(c.plan.feasible)
            << dev.name << " M=" << M << " stage=" << static_cast<int>(stage);
        EXPECT_GT(c.plan.occ.warps_per_sm, 0);
      }
    }
  }
}

TEST(PipelineExtended, AutoPlacementMatchesExplicit) {
  ExtFixture fx;
  pipeline::HmmSearch search(fx.model);
  auto k40 = simt::DeviceSpec::tesla_k40();
  auto automatic = search.run_gpu_auto(k40, fx.db, fx.packed);
  auto manual = search.run_gpu(k40, fx.db, fx.packed,
                               gpu::ParamPlacement::kShared);
  EXPECT_EQ(automatic.hits.size(), manual.hits.size());
  EXPECT_EQ(automatic.msv.n_passed, manual.msv.n_passed);
}

TEST(PipelineExtended, MultiGpuPipelineMatchesSingleDevice) {
  ExtFixture fx;
  pipeline::HmmSearch search(fx.model);
  auto k40 = simt::DeviceSpec::tesla_k40();
  std::vector<simt::DeviceSpec> fermis(4, simt::DeviceSpec::gtx580());

  auto single = search.run_gpu(k40, fx.db, fx.packed,
                               gpu::ParamPlacement::kShared);
  auto multi = search.run_gpu_multi(fermis, fx.db, fx.packed,
                                    gpu::ParamPlacement::kShared);
  ASSERT_EQ(multi.combined.hits.size(), single.hits.size());
  for (std::size_t i = 0; i < single.hits.size(); ++i) {
    EXPECT_EQ(multi.combined.hits[i].seq_index, single.hits[i].seq_index);
    EXPECT_FLOAT_EQ(multi.combined.hits[i].fwd_bits, single.hits[i].fwd_bits);
  }
  EXPECT_EQ(multi.msv_per_device.size(), 4u);
}

TEST(PipelineExtended, HitAlignmentsAreProducedOnRequest) {
  ExtFixture fx(60, 250, 0.06);
  pipeline::Thresholds thr;
  thr.compute_alignments = true;
  pipeline::HmmSearch search(fx.model, thr);
  auto result = search.run_cpu(fx.db);
  ASSERT_FALSE(result.hits.empty());
  for (const auto& hit : result.hits) {
    EXPECT_FALSE(hit.alignments.empty()) << hit.name;
    for (const auto& a : hit.alignments) {
      EXPECT_EQ(a.model_line.size(), a.seq_line.size());
      EXPECT_GE(a.k_start, 1);
      EXPECT_LE(a.k_end, fx.model.length());
    }
  }
}

TEST(PipelineExtended, ParallelCpuMatchesSerial) {
  ExtFixture fx(90, 400, 0.03);
  pipeline::HmmSearch search(fx.model);
  auto serial = search.run_cpu(fx.db);
  for (std::size_t threads : {1u, 2u, 4u}) {
    auto parallel = search.run_cpu_parallel(fx.db, threads);
    ASSERT_EQ(parallel.hits.size(), serial.hits.size()) << threads;
    for (std::size_t i = 0; i < serial.hits.size(); ++i) {
      EXPECT_EQ(parallel.hits[i].seq_index, serial.hits[i].seq_index);
      EXPECT_FLOAT_EQ(parallel.hits[i].fwd_bits, serial.hits[i].fwd_bits);
    }
    EXPECT_EQ(parallel.msv.n_passed, serial.msv.n_passed);
    EXPECT_EQ(parallel.vit.n_passed, serial.vit.n_passed);
  }
}

TEST(PipelineExtended, ParallelEngineHonoursSsvPrefilter) {
  ExtFixture fx(90, 400, 0.03);
  pipeline::Thresholds thr;
  thr.use_ssv_prefilter = true;
  pipeline::HmmSearch search(fx.model, thr);
  auto serial = search.run_cpu(fx.db);
  auto parallel = search.run_cpu_parallel(fx.db, 3);
  EXPECT_EQ(serial.ssv.n_passed, parallel.ssv.n_passed);
  EXPECT_EQ(serial.msv.n_passed, parallel.msv.n_passed);
  ASSERT_EQ(serial.hits.size(), parallel.hits.size());
  for (std::size_t i = 0; i < serial.hits.size(); ++i)
    EXPECT_EQ(serial.hits[i].seq_index, parallel.hits[i].seq_index);
}

TEST(PipelineExtended, GpuEngineHonoursSsvPrefilter) {
  ExtFixture fx(72, 300, 0.04);
  pipeline::Thresholds thr;
  thr.use_ssv_prefilter = true;
  pipeline::HmmSearch search(fx.model, thr);
  auto cpu = search.run_cpu(fx.db);
  auto gpu = search.run_gpu(simt::DeviceSpec::tesla_k40(), fx.db, fx.packed,
                            gpu::ParamPlacement::kShared);
  EXPECT_EQ(cpu.ssv.n_passed, gpu.ssv.n_passed);
  EXPECT_EQ(cpu.msv.n_passed, gpu.msv.n_passed);
  ASSERT_EQ(cpu.hits.size(), gpu.hits.size());
  for (std::size_t i = 0; i < cpu.hits.size(); ++i)
    EXPECT_EQ(cpu.hits[i].seq_index, gpu.hits[i].seq_index);
}

TEST(PipelineExtended, SsvPrefilterKeepsSensitivity) {
  ExtFixture fx(100, 500, 0.04);
  pipeline::Thresholds base;
  pipeline::Thresholds with_ssv;
  with_ssv.use_ssv_prefilter = true;
  pipeline::HmmSearch s_base(fx.model, base);
  pipeline::HmmSearch s_ssv(fx.model, with_ssv);

  auto r_base = s_base.run_cpu(fx.db);
  auto r_ssv = s_ssv.run_cpu(fx.db);

  // The pre-filter must discard most of the database...
  EXPECT_GT(r_ssv.ssv.n_in, 0u);
  EXPECT_LT(r_ssv.ssv.pass_rate(), 0.25);
  // ...while keeping essentially all true hits (full-length homologs
  // always carry one strong segment).
  ASSERT_FALSE(r_base.hits.empty());
  EXPECT_GE(r_ssv.hits.size() + 1, r_base.hits.size());
  // And MSV now runs on far fewer sequences.
  EXPECT_LT(r_ssv.msv.n_in, fx.db.size() / 2);
}

TEST(PipelineExtended, SearchesAreDeterministic) {
  // No hidden global state: identical inputs -> identical outputs, for
  // both engines, run twice from the same HmmSearch instance.
  ExtFixture fx(64, 200, 0.05);
  pipeline::HmmSearch search(fx.model);
  auto a = search.run_cpu(fx.db);
  auto b = search.run_cpu(fx.db);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].seq_index, b.hits[i].seq_index);
    EXPECT_EQ(a.hits[i].evalue, b.hits[i].evalue);
    EXPECT_EQ(a.hits[i].fwd_bits, b.hits[i].fwd_bits);
  }
  auto g1 = search.run_gpu_auto(simt::DeviceSpec::tesla_k40(), fx.db,
                                fx.packed);
  auto g2 = search.run_gpu_auto(simt::DeviceSpec::tesla_k40(), fx.db,
                                fx.packed);
  ASSERT_EQ(g1.hits.size(), g2.hits.size());
  for (std::size_t i = 0; i < g1.hits.size(); ++i)
    EXPECT_EQ(g1.hits[i].evalue, g2.hits[i].evalue);
}

TEST(MultiSearch, FindsHomologsOfTheRightFamily) {
  // Two distinct families; homologs of family A must hit A, not B.
  auto fam_a = hmm::paper_model(70);
  auto fam_b = hmm::paper_model(90);
  fam_a.set_name("famA");
  fam_b.set_name("famB");

  pipeline::WorkloadSpec spec;
  spec.db.n_sequences = 250;
  spec.homolog_fraction = 0.08;  // homologs of famA only
  auto db = pipeline::make_workload(fam_a, spec);
  bio::PackedDatabase packed(db);

  std::vector<hmm::Plan7Hmm> models;
  models.push_back(fam_a);
  models.push_back(fam_b);
  pipeline::MultiSearch multi(std::move(models));

  auto cpu_results = multi.run_cpu(db);
  ASSERT_EQ(cpu_results.size(), 2u);
  EXPECT_GT(cpu_results[0].result.hits.size(), 5u);
  EXPECT_LT(cpu_results[1].result.hits.size(),
            cpu_results[0].result.hits.size() / 2);

  auto gpu_results =
      multi.run_gpu(simt::DeviceSpec::tesla_k40(), db, packed);
  ASSERT_EQ(gpu_results.size(), 2u);
  EXPECT_EQ(gpu_results[0].result.hits.size(),
            cpu_results[0].result.hits.size());
  EXPECT_EQ(gpu_results[1].result.hits.size(),
            cpu_results[1].result.hits.size());
}

}  // namespace
