// Performance-counter foundations: the cost model extrapolates counters
// linearly in DP cells, so counters must actually scale that way, and
// the op mix must be placement-consistent.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "gpu/search.hpp"
#include "hmm/generator.hpp"

namespace {

using namespace finehmm;

bio::PackedDatabase make_db(int n_seqs, int len, std::uint64_t seed) {
  Pcg32 rng(seed);
  bio::SequenceDatabase db;
  for (int i = 0; i < n_seqs; ++i)
    db.add(bio::random_sequence(len, rng));
  return bio::PackedDatabase(db);
}

TEST(Counters, ScaleLinearlyInCells) {
  auto model = hmm::paper_model(96);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 200);
  profile::MsvProfile msv(prof);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());

  auto small = make_db(16, 200, 5);
  auto large = make_db(64, 200, 5);  // 4x the cells
  auto a = search.run_msv(msv, small, gpu::ParamPlacement::kGlobal);
  auto b = search.run_msv(msv, large, gpu::ParamPlacement::kGlobal);
  ASSERT_EQ(b.counters.cells, 4 * a.counters.cells);

  auto ratio = [](std::uint64_t x, std::uint64_t y) {
    return static_cast<double>(y) / static_cast<double>(x);
  };
  // Global placement has no per-block staging, so every counter is
  // work-proportional.
  EXPECT_NEAR(ratio(a.counters.alu, b.counters.alu), 4.0, 0.1);
  EXPECT_NEAR(ratio(a.counters.smem_cycles, b.counters.smem_cycles), 4.0,
              0.1);
  EXPECT_NEAR(ratio(a.counters.gmem_cached_tx, b.counters.gmem_cached_tx),
              4.0, 0.1);
  EXPECT_NEAR(ratio(a.counters.shuffles, b.counters.shuffles), 4.0, 0.1);
}

TEST(Counters, SharedPlacementTradesCachedLoadsForSmem) {
  auto model = hmm::paper_model(128);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 200);
  profile::MsvProfile msv(prof);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  auto db = make_db(32, 250, 7);

  auto shared = search.run_msv(msv, db, gpu::ParamPlacement::kShared);
  auto global = search.run_msv(msv, db, gpu::ParamPlacement::kGlobal);
  // Same work...
  EXPECT_EQ(shared.counters.cells, global.counters.cells);
  EXPECT_EQ(shared.counters.residues, global.counters.residues);
  // ...different memory paths: shared placement does no cached global
  // emission loads inside the row loop, global placement does no
  // emission reads from shared memory.
  EXPECT_GT(global.counters.gmem_cached_tx, 0u);
  EXPECT_LT(shared.counters.gmem_cached_tx, global.counters.gmem_cached_tx);
  EXPECT_GT(shared.counters.smem_cycles, global.counters.smem_cycles);
}

TEST(Counters, LazyfInnerCountsAtLeastOnePerGroup) {
  auto model = hmm::paper_model(64);  // 2 groups of 32
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 200);
  profile::VitProfile vit(prof);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  auto db = make_db(8, 100, 9);
  auto run = search.run_vit(vit, db, gpu::ParamPlacement::kShared);
  // Every residue row visits 2 groups, each with >= 1 mandatory check.
  EXPECT_GE(run.counters.lazyf_inner, 2 * run.counters.residues);
}

}  // namespace
