// Report rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "hmm/generator.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "pipeline/workload.hpp"

namespace {

using namespace finehmm;

struct ReportFixture {
  hmm::Plan7Hmm model = hmm::paper_model(60);
  bio::SequenceDatabase db;
  pipeline::SearchResult result;
  hmm::SearchProfile prof{model, hmm::AlignMode::kLocalMultihit, 400};

  ReportFixture() {
    pipeline::WorkloadSpec spec;
    spec.db.n_sequences = 250;
    spec.homolog_fraction = 0.05;
    db = pipeline::make_workload(model, spec);
    pipeline::Thresholds thr;
    thr.compute_alignments = true;
    thr.define_domains = true;
    pipeline::HmmSearch search(model, thr);
    result = search.run_cpu(db);
  }
};

TEST(Report, ContainsHeaderAndEveryHit) {
  ReportFixture fx;
  ASSERT_FALSE(fx.result.hits.empty());
  std::ostringstream out;
  pipeline::write_report(out, fx.result, fx.prof, fx.db);
  std::string text = out.str();
  EXPECT_NE(text.find("# query:"), std::string::npos);
  EXPECT_NE(text.find("E-value"), std::string::npos);
  for (const auto& hit : fx.result.hits)
    EXPECT_NE(text.find(hit.name), std::string::npos) << hit.name;
}

TEST(Report, MaxHitsTruncatesWithNotice) {
  ReportFixture fx;
  if (fx.result.hits.size() < 3) GTEST_SKIP();
  pipeline::ReportOptions opts;
  opts.max_hits = 2;
  std::ostringstream out;
  pipeline::write_report(out, fx.result, fx.prof, fx.db, opts);
  EXPECT_NE(out.str().find("additional hits suppressed"), std::string::npos);
}

TEST(Report, DomainsAndAlignmentsRenderOnRequest) {
  ReportFixture fx;
  pipeline::ReportOptions opts;
  opts.show_domains = true;
  opts.show_alignments = true;
  std::ostringstream out;
  pipeline::write_report(out, fx.result, fx.prof, fx.db, opts);
  std::string text = out.str();
  EXPECT_NE(text.find("domain 1:"), std::string::npos);
  EXPECT_NE(text.find("model "), std::string::npos);
}

TEST(Report, TbloutHasOneLinePerHit) {
  ReportFixture fx;
  std::ostringstream out;
  pipeline::write_tblout(out, fx.result, fx.prof, fx.db);
  std::string text = out.str();
  std::size_t lines = 0;
  for (char c : text)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, fx.result.hits.size() + 2);  // 2 comment lines
  EXPECT_NE(text.find(fx.prof.name()), std::string::npos);
}

}  // namespace
