// The thread-safety capability layer (util/thread_annotations.hpp +
// util/mutex.hpp) has a two-sided contract:
//
//   * On Clang, every FINEHMM_* macro expands to the matching
//     __attribute__ so -Wthread-safety can check lock discipline at
//     compile time (the negative side is tests/compile_fail/ + the
//     test_thread_safety_violations ctest, which must FAIL to compile).
//   * On every other compiler, the macros expand to NOTHING — zero
//     tokens — so GCC builds see plain standard C++ with no attribute
//     warnings and identical codegen.
//
// The static_asserts below pin both sides by stringifying the macro
// expansion; the runtime tests exercise the Mutex/MutexLock/CondVar
// wrappers themselves (mutual exclusion, try_lock contention, CondVar
// wakeups and deadline timeouts) so the wrapper is tested as a lock,
// not just as an annotation carrier.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

using finehmm::CondVar;
using finehmm::Mutex;
using finehmm::MutexLock;

// --- Macro-expansion contract -----------------------------------------

#define FINEHMM_TEST_STR2(x) #x
#define FINEHMM_TEST_STR(x) FINEHMM_TEST_STR2(x)

constexpr bool expands_to_nothing(const char* s) { return *s == '\0'; }
constexpr bool contains(const char* haystack, const char* needle) {
  for (; *haystack; ++haystack) {
    const char* h = haystack;
    const char* n = needle;
    while (*n && *h == *n) ++h, ++n;
    if (!*n) return true;
  }
  return false;
}

#if defined(__clang__)
static_assert(contains(FINEHMM_TEST_STR(FINEHMM_GUARDED_BY(m)), "guarded_by"),
              "on Clang, FINEHMM_GUARDED_BY must carry the attribute");
static_assert(contains(FINEHMM_TEST_STR(FINEHMM_REQUIRES(m)),
                       "requires_capability"),
              "on Clang, FINEHMM_REQUIRES must carry the attribute");
static_assert(contains(FINEHMM_TEST_STR(FINEHMM_EXCLUDES(m)),
                       "locks_excluded"),
              "on Clang, FINEHMM_EXCLUDES must carry the attribute");
static_assert(contains(FINEHMM_TEST_STR(FINEHMM_CAPABILITY("mutex")),
                       "capability"),
              "on Clang, FINEHMM_CAPABILITY must carry the attribute");
#else
static_assert(expands_to_nothing(FINEHMM_TEST_STR(FINEHMM_GUARDED_BY(m))),
              "off Clang, FINEHMM_GUARDED_BY must expand to zero tokens");
static_assert(expands_to_nothing(FINEHMM_TEST_STR(FINEHMM_REQUIRES(m))),
              "off Clang, FINEHMM_REQUIRES must expand to zero tokens");
static_assert(expands_to_nothing(FINEHMM_TEST_STR(FINEHMM_EXCLUDES(m))),
              "off Clang, FINEHMM_EXCLUDES must expand to zero tokens");
static_assert(expands_to_nothing(FINEHMM_TEST_STR(FINEHMM_ACQUIRE())),
              "off Clang, FINEHMM_ACQUIRE must expand to zero tokens");
static_assert(expands_to_nothing(FINEHMM_TEST_STR(FINEHMM_RELEASE())),
              "off Clang, FINEHMM_RELEASE must expand to zero tokens");
static_assert(
    expands_to_nothing(FINEHMM_TEST_STR(FINEHMM_NO_THREAD_SAFETY_ANALYSIS)),
    "off Clang, FINEHMM_NO_THREAD_SAFETY_ANALYSIS must expand to nothing");
#endif

// A type declared with the full annotation vocabulary must compile on
// every compiler (this is the positive compile test; the attributes are
// exercised for real across src/server and src/util).
class AnnotatedCounter {
 public:
  void add(int v) FINEHMM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    value_ += v;
  }
  int read() const FINEHMM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ FINEHMM_GUARDED_BY(mu_) = 0;
};

// --- The wrapper as an actual lock ------------------------------------

TEST(ThreadAnnotations, MutexProvidesMutualExclusion) {
  AnnotatedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> crew;
  crew.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    crew.emplace_back([&counter] {
      for (int i = 0; i < kIters; ++i) counter.add(1);
    });
  }
  for (auto& th : crew) th.join();
  EXPECT_EQ(counter.read(), kThreads * kIters);
}

TEST(ThreadAnnotations, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  // Held here: a second claim from another thread must fail.
  bool second = true;
  std::thread probe([&] { second = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(second);
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(ThreadAnnotations, CondVarWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(ready);
}

TEST(ThreadAnnotations, CondVarWaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Nobody will notify: the deadline must fire and the lock must still
  // be held afterwards (released cleanly by MutexLock's destructor).
  EXPECT_EQ(cv.wait_until(mu, deadline), std::cv_status::timeout);
}

TEST(ThreadAnnotations, MutexLockReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

}  // namespace
