// The prefix-scan P7Viterbi kernel (paper §VI future work) must be
// bit-identical to the scalar reference — including on delete-heavy
// models where the D->D chains are long, and on models containing
// impossible (-inf) D->D links, which exercise the clamped-link path.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "cpu/vit_scalar.hpp"
#include "gpu/search.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"

namespace {

using namespace finehmm;

struct PrefixFixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  profile::VitProfile vit;
  bio::SequenceDatabase db;
  bio::PackedDatabase packed;

  PrefixFixture(int M, double delete_extend, double indel_open = 0.02,
                std::uint64_t seed = 21)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          spec.delete_extend = delete_extend;
          spec.indel_open = indel_open;
          return hmm::generate_hmm(spec);
        }()),
        prof(model, hmm::AlignMode::kLocalMultihit, 350),
        vit(prof) {
    Pcg32 rng(seed + 3);
    for (int i = 0; i < 25; ++i) {
      if (i % 4 == 0)
        db.add(hmm::sample_homolog(model, rng));
      else
        db.add(bio::random_sequence(15 + rng.below(350), rng));
    }
    packed = bio::PackedDatabase(db);
  }
};

class PrefixScanEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PrefixScanEquivalence, MatchesScalarReference) {
  auto [M, dd10] = GetParam();
  PrefixFixture fx(M, dd10 / 10.0, dd10 >= 7 ? 0.10 : 0.02);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  for (auto placement :
       {gpu::ParamPlacement::kShared, gpu::ParamPlacement::kGlobal}) {
    auto result = search.run_vit_prefix(fx.vit, fx.packed, placement);
    for (std::size_t s = 0; s < fx.db.size(); ++s) {
      auto ref = cpu::vit_scalar(fx.vit, fx.db[s].codes.data(),
                                 fx.db[s].length());
      EXPECT_FLOAT_EQ(result.scores[s], ref.score_nats)
          << "seq " << s << " M=" << M << " dd=" << dd10 / 10.0;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SizesAndDeleteRates, PrefixScanEquivalence,
                         ::testing::Combine(::testing::Values(7, 32, 33, 96,
                                                              200),
                                            ::testing::Values(1, 5, 9)));

TEST(PrefixScan, AgreesWithLazyFKernel) {
  PrefixFixture fx(128, 0.8, 0.08);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  auto lazy = search.run_vit(fx.vit, fx.packed, gpu::ParamPlacement::kShared);
  auto prefix =
      search.run_vit_prefix(fx.vit, fx.packed, gpu::ParamPlacement::kShared);
  for (std::size_t s = 0; s < fx.db.size(); ++s)
    EXPECT_FLOAT_EQ(lazy.scores[s], prefix.scores[s]) << "seq " << s;
}

TEST(PrefixScan, UsesBoundedShufflesPerGroup) {
  // The prefix kernel's shuffle count per group is fixed (2 scans of 5
  // steps + 1 diagonal shift + broadcasts); Lazy-F's grows with the
  // delete-extension rate.
  PrefixFixture heavy(128, 0.9, 0.12);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  auto lazy =
      search.run_vit(heavy.vit, heavy.packed, gpu::ParamPlacement::kShared);
  auto prefix = search.run_vit_prefix(heavy.vit, heavy.packed,
                                      gpu::ParamPlacement::kShared);
  double groups = static_cast<double>(lazy.counters.residues) * (128 / 32);
  double lazy_votes = static_cast<double>(lazy.counters.votes) / groups;
  EXPECT_GT(lazy_votes, 1.5) << "delete-heavy model should iterate Lazy-F";
  EXPECT_EQ(prefix.counters.votes, 0u) << "prefix scan needs no votes";
  double prefix_shfl_per_group =
      static_cast<double>(prefix.counters.shuffles) / groups;
  // 10 scan steps + shifts/broadcasts + (amortized) xE reduction.
  EXPECT_LT(prefix_shfl_per_group, 20.0);
}

TEST(PrefixScan, ScanPrimitivesAreExact) {
  auto dev = simt::DeviceSpec::tesla_k40();
  simt::PerfCounters counters;
  simt::SharedMemory smem(64, counters);
  simt::WarpContext ctx(dev, counters, smem, 0, 1);
  Pcg32 rng(4);
  simt::WarpReg<int> a;
  for (int i = 0; i < simt::kWarpSize; ++i)
    a[i] = static_cast<int>(rng.below(1000)) - 500;
  auto sum = ctx.scan_add_i32(a);
  auto mx = ctx.scan_max_i32(a, -1000000);
  int acc = 0, best = -1000000;
  for (int i = 0; i < simt::kWarpSize; ++i) {
    acc += a[i];
    best = std::max(best, a[i]);
    EXPECT_EQ(sum[i], acc) << "lane " << i;
    EXPECT_EQ(mx[i], best) << "lane " << i;
  }
}

}  // namespace
