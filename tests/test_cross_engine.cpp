// Consolidated cross-engine consistency matrix.
//
// One fixture, every engine, one sweep: the scalar references anchor the
// striped CPU filters, the SIMT kernels (both architectures, both
// placements, both D-chain strategies), SSV, and the float Forward
// filter.  Any regression anywhere in the scoring stack fails here first.
#include <gtest/gtest.h>

#include <tuple>

#include "bio/synthetic.hpp"
#include "cpu/fwd_filter.hpp"
#include "cpu/generic.hpp"
#include "cpu/msv_filter.hpp"
#include "cpu/msv_scalar.hpp"
#include "cpu/ssv.hpp"
#include "cpu/vit_filter.hpp"
#include "cpu/vit_scalar.hpp"
#include "gpu/search.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"

namespace {

using namespace finehmm;

struct Engines {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  profile::MsvProfile msv;
  profile::VitProfile vit;
  profile::FwdProfile fwd;
  bio::SequenceDatabase db;
  bio::PackedDatabase packed;

  Engines(int M, std::uint64_t seed)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          spec.delete_extend = 0.6;
          spec.indel_open = 0.03;
          return hmm::generate_hmm(spec);
        }()),
        prof(model, hmm::AlignMode::kLocalMultihit, 250),
        msv(prof),
        vit(prof),
        fwd(prof) {
    Pcg32 rng(seed + 17);
    for (int i = 0; i < 18; ++i) {
      if (i % 3 == 0)
        db.add(hmm::sample_homolog(model, rng));
      else
        db.add(bio::random_sequence(5 + rng.below(300), rng));
    }
    packed = bio::PackedDatabase(db);
  }
};

class CrossEngine
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CrossEngine, EveryEngineAgrees) {
  auto [M, seed] = GetParam();
  Engines fx(M, seed);

  // Reference scores per sequence.
  std::vector<float> ref_msv(fx.db.size()), ref_vit(fx.db.size());
  std::vector<bool> ref_ovf(fx.db.size());
  cpu::MsvFilter msv_striped_f(fx.msv);
  cpu::VitFilter vit_striped_f(fx.vit);
  cpu::FwdFilter fwd_f(fx.fwd);
  for (std::size_t s = 0; s < fx.db.size(); ++s) {
    const auto& seq = fx.db[s];
    auto m = cpu::msv_scalar(fx.msv, seq.codes.data(), seq.length());
    ref_msv[s] = m.score_nats;
    ref_ovf[s] = m.overflowed;
    auto v = cpu::vit_scalar(fx.vit, seq.codes.data(), seq.length());
    ref_vit[s] = v.score_nats;

    // CPU striped engines: bit-exact.
    auto ms = msv_striped_f.score(seq.codes.data(), seq.length());
    EXPECT_FLOAT_EQ(ms.score_nats, ref_msv[s]);
    auto vs = vit_striped_f.score(seq.codes.data(), seq.length());
    EXPECT_FLOAT_EQ(vs.score_nats, ref_vit[s]);

    // SSV <= MSV.
    auto ss = cpu::ssv_scalar(fx.msv, seq.codes.data(), seq.length());
    if (!ss.overflowed && !m.overflowed) {
      EXPECT_LE(ss.score_nats, ref_msv[s] + 1e-4f);
    }
    auto ssp = cpu::ssv_striped(fx.msv, seq.codes.data(), seq.length());
    EXPECT_FLOAT_EQ(ssp.score_nats, ss.score_nats);

    // Forward filter tracks the exact log-space Forward.
    float fwd_ref =
        cpu::generic_forward(fx.prof, seq.codes.data(), seq.length(), true);
    float fwd_fast = fwd_f.score(seq.codes.data(), seq.length());
    EXPECT_NEAR(fwd_fast, fwd_ref, 0.05f + 2e-4f * seq.length());
    // Forward >= Viterbi (within word quantization).
    EXPECT_GE(fwd_ref, ref_vit[s] - 0.1f);
  }

  // SIMT kernels on both architectures and placements.
  for (const auto& dev :
       {simt::DeviceSpec::tesla_k40(), simt::DeviceSpec::gtx580()}) {
    gpu::GpuSearch search(dev);
    for (auto placement :
         {gpu::ParamPlacement::kShared, gpu::ParamPlacement::kGlobal}) {
      auto mr = search.run_msv(fx.msv, fx.packed, placement);
      auto vr = search.run_vit(fx.vit, fx.packed, placement);
      auto pr = search.run_vit_prefix(fx.vit, fx.packed, placement);
      for (std::size_t s = 0; s < fx.db.size(); ++s) {
        EXPECT_FLOAT_EQ(mr.scores[s], ref_msv[s])
            << dev.name << " " << gpu::placement_name(placement) << " seq "
            << s;
        EXPECT_EQ(mr.overflow[s] != 0, ref_ovf[s]);
        EXPECT_FLOAT_EQ(vr.scores[s], ref_vit[s]);
        EXPECT_FLOAT_EQ(pr.scores[s], ref_vit[s]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrossEngine,
    ::testing::Combine(::testing::Values(2, 31, 33, 130),
                       ::testing::Values(1u, 2u)));

}  // namespace
