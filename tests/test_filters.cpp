// Cross-implementation equivalence of the CPU scoring engines.
//
// The scalar byte MSV and scalar word Viterbi are the executable
// specifications; the striped SIMD filters must match them bit-for-bit,
// and both quantized filters must track their float references within
// quantization error.
#include <gtest/gtest.h>

#include <cmath>

#include "bio/synthetic.hpp"
#include "cpu/generic.hpp"
#include "cpu/msv_filter.hpp"
#include "cpu/msv_scalar.hpp"
#include "cpu/vit_filter.hpp"
#include "cpu/vit_scalar.hpp"
#include "hmm/generator.hpp"
#include "hmm/profile.hpp"
#include "hmm/sampler.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"

namespace {

using namespace finehmm;

struct Fixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  profile::MsvProfile msv;
  profile::VitProfile vit;

  explicit Fixture(int M, std::uint64_t seed = 7)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          return hmm::generate_hmm(spec);
        }()),
        prof(model, hmm::AlignMode::kLocalMultihit, 400),
        msv(prof),
        vit(prof) {}
};

class FilterEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FilterEquivalence, StripedMsvMatchesScalarOnRandomSequences) {
  const int M = GetParam();
  Fixture fx(M);
  Pcg32 rng(99);
  cpu::MsvFilter striped(fx.msv);
  for (int rep = 0; rep < 20; ++rep) {
    std::size_t L = 1 + rng.below(600);
    auto seq = bio::random_sequence(L, rng);
    auto a = cpu::msv_scalar(fx.msv, seq.codes.data(), L);
    auto b = striped.score(seq.codes.data(), L);
    EXPECT_EQ(a.overflowed, b.overflowed) << "M=" << M << " L=" << L;
    EXPECT_FLOAT_EQ(a.score_nats, b.score_nats) << "M=" << M << " L=" << L;
  }
}

TEST_P(FilterEquivalence, StripedMsvMatchesScalarOnHomologs) {
  const int M = GetParam();
  Fixture fx(M);
  Pcg32 rng(123);
  cpu::MsvFilter striped(fx.msv);
  for (int rep = 0; rep < 10; ++rep) {
    auto seq = hmm::sample_homolog(fx.model, rng);
    auto a = cpu::msv_scalar(fx.msv, seq.codes.data(), seq.length());
    auto b = striped.score(seq.codes.data(), seq.length());
    EXPECT_EQ(a.overflowed, b.overflowed);
    EXPECT_FLOAT_EQ(a.score_nats, b.score_nats);
  }
}

TEST_P(FilterEquivalence, StripedViterbiMatchesScalarOnRandomSequences) {
  const int M = GetParam();
  Fixture fx(M);
  Pcg32 rng(42);
  cpu::VitFilter striped(fx.vit);
  for (int rep = 0; rep < 20; ++rep) {
    std::size_t L = 1 + rng.below(500);
    auto seq = bio::random_sequence(L, rng);
    auto a = cpu::vit_scalar(fx.vit, seq.codes.data(), L);
    auto b = striped.score(seq.codes.data(), L);
    EXPECT_FLOAT_EQ(a.score_nats, b.score_nats) << "M=" << M << " L=" << L;
  }
}

TEST_P(FilterEquivalence, StripedViterbiMatchesScalarOnHomologs) {
  const int M = GetParam();
  Fixture fx(M);
  Pcg32 rng(4242);
  cpu::VitFilter striped(fx.vit);
  for (int rep = 0; rep < 10; ++rep) {
    auto seq = hmm::sample_homolog(fx.model, rng);
    auto a = cpu::vit_scalar(fx.vit, seq.codes.data(), seq.length());
    auto b = striped.score(seq.codes.data(), seq.length());
    EXPECT_FLOAT_EQ(a.score_nats, b.score_nats);
  }
}

TEST_P(FilterEquivalence, ByteMsvTracksFloatReference) {
  const int M = GetParam();
  Fixture fx(M);
  Pcg32 rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    std::size_t L = 50 + rng.below(400);
    auto seq = bio::random_sequence(L, rng);
    auto byte = cpu::msv_scalar(fx.msv, seq.codes.data(), L);
    if (byte.overflowed) continue;
    float ref = cpu::generic_msv_filtersim(fx.prof, seq.codes.data(), L);
    // Byte precision is 1/scale nats per lookup; errors accumulate along
    // the optimal path (length <= L), but are random-signed in practice.
    float tol = 1.0f + 0.02f * static_cast<float>(L);
    EXPECT_NEAR(byte.score_nats, ref, tol) << "M=" << M << " L=" << L;
  }
}

TEST_P(FilterEquivalence, WordViterbiTracksFloatReference) {
  const int M = GetParam();
  Fixture fx(M);
  Pcg32 rng(6);
  for (int rep = 0; rep < 10; ++rep) {
    std::size_t L = 50 + rng.below(400);
    auto seq = bio::random_sequence(L, rng);
    auto word = cpu::vit_scalar(fx.vit, seq.codes.data(), L);
    float ref = cpu::generic_viterbi(fx.prof, seq.codes.data(), L);
    // Word precision is ~0.0014 nats per lookup.
    float tol = 0.05f + 0.002f * static_cast<float>(L);
    EXPECT_NEAR(word.score_nats, ref, tol) << "M=" << M << " L=" << L;
  }
}

TEST_P(FilterEquivalence, ForwardDominatesViterbi) {
  const int M = GetParam();
  Fixture fx(M);
  Pcg32 rng(77);
  for (int rep = 0; rep < 5; ++rep) {
    std::size_t L = 30 + rng.below(200);
    auto seq = bio::random_sequence(L, rng);
    float vit = cpu::generic_viterbi(fx.prof, seq.codes.data(), L);
    float fwd = cpu::generic_forward(fx.prof, seq.codes.data(), L, true);
    EXPECT_GE(fwd, vit - 1e-3f) << "M=" << M << " L=" << L;
  }
}

TEST_P(FilterEquivalence, ForwardEqualsBackward) {
  const int M = GetParam();
  Fixture fx(M);
  Pcg32 rng(88);
  for (int rep = 0; rep < 3; ++rep) {
    std::size_t L = 20 + rng.below(120);
    auto seq = bio::random_sequence(L, rng);
    float fwd = cpu::generic_forward(fx.prof, seq.codes.data(), L, true);
    float bwd = cpu::generic_backward(fx.prof, seq.codes.data(), L, true);
    EXPECT_NEAR(fwd, bwd, 2e-3f) << "M=" << M << " L=" << L;
  }
}

TEST_P(FilterEquivalence, HomologsScoreAboveRandom) {
  const int M = GetParam();
  if (M < 15) GTEST_SKIP() << "tiny motifs carry too little signal";
  Fixture fx(M);
  Pcg32 rng(31337);
  // Average bit score of homologs must exceed that of random sequences.
  double hom = 0.0, rnd = 0.0;
  const int n = 8;
  for (int rep = 0; rep < n; ++rep) {
    auto h = hmm::sample_homolog(fx.model, rng);
    auto r = bio::random_sequence(h.length(), rng);
    auto hs = cpu::msv_scalar(fx.msv, h.codes.data(), h.length());
    auto rs = cpu::msv_scalar(fx.msv, r.codes.data(), r.length());
    float hv = hs.overflowed ? 100.0f : hs.score_nats;
    float rv = rs.overflowed ? 100.0f : rs.score_nats;
    hom += hmm::nats_to_bits(hv, static_cast<int>(h.length()));
    rnd += hmm::nats_to_bits(rv, static_cast<int>(r.length()));
  }
  EXPECT_GT(hom / n, rnd / n + 5.0) << "M=" << M;
}

INSTANTIATE_TEST_SUITE_P(ModelSizes, FilterEquivalence,
                         ::testing::Values(1, 3, 7, 15, 16, 17, 48, 100, 129,
                                           200, 400),
                         ::testing::PrintToStringParamName());

// High delete-extension models stress the Lazy-F path specifically.
TEST(LazyF, HighDeleteModelsStillMatchScalar) {
  hmm::RandomHmmSpec spec;
  spec.length = 120;
  spec.seed = 9;
  spec.indel_open = 0.12;
  spec.delete_extend = 0.85;
  auto model = hmm::generate_hmm(spec);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 300);
  profile::VitProfile vit(prof);
  cpu::VitFilter striped(vit);
  Pcg32 rng(10);
  int passes = 0;
  for (int rep = 0; rep < 30; ++rep) {
    std::size_t L = 20 + rng.below(300);
    auto seq = bio::random_sequence(L, rng);
    auto a = cpu::vit_scalar(vit, seq.codes.data(), L);
    auto b = striped.score(seq.codes.data(), L);
    EXPECT_FLOAT_EQ(a.score_nats, b.score_nats);
    passes += striped.last_lazyf_passes();
  }
  // With 85% delete extension the wrap path must actually fire sometimes;
  // otherwise this test would not be exercising Lazy-F at all.
  EXPECT_GT(passes, 0);
}

TEST(LazyF, WordScoreInvariantToQ) {
  // The striped result must not depend on the stripe count; compare two
  // models whose lengths straddle a lane boundary against the scalar.
  for (int M : {8, 9, 63, 64, 65}) {
    Fixture fx(M, 50 + M);
    cpu::VitFilter striped(fx.vit);
    Pcg32 rng(3);
    auto seq = bio::random_sequence(150, rng);
    auto a = cpu::vit_scalar(fx.vit, seq.codes.data(), 150);
    auto b = striped.score(seq.codes.data(), 150);
    EXPECT_FLOAT_EQ(a.score_nats, b.score_nats) << "M=" << M;
  }
}

}  // namespace
