// The obs telemetry subsystem: span recording and nesting, disabled-mode
// zero-allocation, Chrome trace schema, rate guards, the structured JSON
// logger, Prometheus exposition hygiene, and the overlapped engine's
// telemetry invariants (queue accounting, per-thread merge).
//
// This file lives in its own test binary (finehmm_obs_tests): it replaces
// the global operator new/delete to count allocations, which must not
// leak into the other binaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>

#include "hmm/generator.hpp"
#include "obs/histogram.hpp"
#include "obs/log.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/workload.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
}

// The replaced operators pair malloc with free by design; with the
// definitions visible in this TU, GCC 12 inlines callers and flags the
// free() as -Wmismatched-new-delete (it cannot know the replaced new is
// malloc-backed).  False positive for the global-replacement pattern.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow forms must be replaced too (std::stable_sort's temporary
// buffer uses them); otherwise their allocations would be freed by the
// replaced operator delete below — an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace finehmm;

// ---------------------------------------------------------------- spans

TEST(Recorder, NestedSpansStayWithinParent) {
  obs::Recorder rec;
  rec.reserve_threads(1);
  {
    obs::ScopedSpan outer(&rec, 0, "outer");
    {
      obs::ScopedSpan inner(&rec, 0, "inner");
      OBS_SPAN(&rec, 0, "leaf");
    }
  }
  auto events = rec.merged_events();
  ASSERT_EQ(events.size(), 3u);
  // merged_events sorts by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "leaf");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[0].start_ns);
    EXPECT_LE(events[i].start_ns + events[i].dur_ns,
              events[0].start_ns + events[0].dur_ns);
  }
}

TEST(Recorder, SpanBanksStageTimeAndItems) {
  obs::Recorder rec;
  rec.reserve_threads(2);
  {
    obs::ScopedSpan s(&rec, 1, "msv.chunk", obs::Stage::kMsv);
    s.set_items(17);
  }
  EXPECT_GT(rec.stage_seconds(obs::Stage::kMsv), 0.0);
  EXPECT_EQ(rec.stage_items(obs::Stage::kMsv), 17u);
  EXPECT_EQ(rec.stage_items(obs::Stage::kVit), 0u);
}

TEST(Recorder, SpanBudgetDropsAreCounted) {
  obs::RecorderConfig cfg;
  cfg.max_events_per_thread = 4;
  obs::Recorder rec(cfg);
  rec.reserve_threads(1);
  for (int i = 0; i < 10; ++i) OBS_SPAN(&rec, 0, "tick");
  EXPECT_EQ(rec.merged_events().size(), 4u);
  EXPECT_EQ(rec.counter(obs::Counter::kSpansDropped), 6u);
}

TEST(Recorder, MergeIsDeterministicAcrossThreadSlots) {
  // Identical per-thread logs must merge to the same totals regardless
  // of how work was spread over slots.
  auto fill = [](obs::Recorder& rec, std::uint32_t threads) {
    rec.reserve_threads(threads);
    for (std::uint32_t w = 0; w < threads; ++w) {
      rec.log(w)->add_stage(obs::Stage::kVit, 0.25, 3);
      rec.log(w)->add(obs::Counter::kHelpFirstRescues, 2);
    }
  };
  obs::Recorder one, four;
  fill(one, 1);
  fill(four, 4);
  EXPECT_DOUBLE_EQ(one.stage_seconds(obs::Stage::kVit), 0.25);
  EXPECT_DOUBLE_EQ(four.stage_seconds(obs::Stage::kVit), 1.0);
  EXPECT_EQ(four.stage_items(obs::Stage::kVit), 12u);
  EXPECT_EQ(four.counter(obs::Counter::kHelpFirstRescues), 8u);
  // And a second identical merge reads back the exact same doubles.
  EXPECT_DOUBLE_EQ(four.stage_seconds(obs::Stage::kVit),
                   four.stage_seconds(obs::Stage::kVit));
}

// ------------------------------------------- disabled mode: truly free

TEST(Recorder, DisabledModeAllocatesNothing) {
  obs::RecorderConfig cfg;
  cfg.enabled = false;
  obs::Recorder rec(cfg);
  obs::Recorder* null_rec = nullptr;

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    rec.reserve_threads(8);             // no-op when disabled
    EXPECT_EQ(rec.log(0), nullptr);     // callers see "no log"
    OBS_SPAN(&rec, 0, "hot");           // RAII span: no-op
    OBS_SPAN(null_rec, 0, "hot");       // null recorder: no-op
    obs::ScopedSpan s(null_rec, 0, "hot", obs::Stage::kMsv);
    s.set_items(1);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

// --------------------------------------------------- exporters / rates

TEST(Telemetry, RateGuardsNeverEmitInf) {
  EXPECT_EQ(obs::json_rate(10.0, 0.0), "null");
  EXPECT_EQ(obs::json_rate(10.0, 1e-300), "null");  // denormal-ish elapsed
  EXPECT_EQ(obs::json_rate(std::nan(""), 1.0), "null");
  EXPECT_NE(obs::json_rate(10.0, 2.0), "null");
  EXPECT_DOUBLE_EQ(obs::safe_rate(10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(obs::safe_rate(10.0, 2.0), 5.0);
  EXPECT_FALSE(obs::valid_rate(10.0, -1.0));
}

TEST(Telemetry, JsonSnapshotHasNoInfOrNan) {
  obs::ScanTelemetry t;
  t.engine = "cpu_serial";
  obs::StageTelemetry st;
  st.stage = "msv";
  st.cells = 1e9;
  st.wall_seconds = 0.0;  // a rate denominator of zero
  t.stages.push_back(st);
  std::ostringstream os;
  t.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"finehmm.scan_telemetry.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

/// Minimal structural JSON check: braces/brackets balance outside of
/// string literals and the text is non-empty.  Not a parser, but enough
/// to catch the classic trailing-comma / unterminated-string bugs.
bool json_balanced(const std::string& s) {
  int brace = 0, bracket = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    if (brace < 0 || bracket < 0) return false;
  }
  return !s.empty() && brace == 0 && bracket == 0 && !in_string;
}

TEST(Telemetry, ChromeTraceRoundTrip) {
  obs::Recorder rec;
  rec.reserve_threads(2);
  {
    obs::ScopedSpan a(&rec, 0, "produce.chunk");
    obs::ScopedSpan b(&rec, 1, "rescore");
  }
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();
  ASSERT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"produce.chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"rescore\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // One complete "X" event per recorded span.
  std::size_t x_events = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\": \"X\"", pos)) != std::string::npos; ++pos)
    ++x_events;
  EXPECT_EQ(x_events, rec.merged_events().size());
}

TEST(Telemetry, PrometheusExportCoversTheFamilies) {
  obs::ScanTelemetry t;
  t.engine = "cpu_overlapped";
  t.wall_seconds = 1.5;
  obs::StageTelemetry st;
  st.stage = "vit";
  st.busy_seconds = 0.5;
  t.stages.push_back(st);
  obs::QueueTelemetry q;
  q.capacity = 64;
  t.queue = q;
  std::ostringstream os;
  t.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("finehmm_scan_wall_seconds"), std::string::npos);
  EXPECT_NE(text.find("finehmm_stage_seconds"), std::string::npos);
  EXPECT_NE(text.find("finehmm_queue_enqueued_total"), std::string::npos);
  EXPECT_NE(text.find("engine=\"cpu_overlapped\""), std::string::npos);
}

// ----------------------------------------- always-on histograms: free

TEST(Histogram, RecordingPathAllocatesNothing) {
  // The daemon records EVERY request into these — the path must never
  // touch the heap.  Construction, recording, snapshot, and quantile
  // math all run on inline storage.
  static obs::ConcurrentHistogram concurrent;  // ~30 KB, static storage
  static obs::Histogram plain;

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    concurrent.record(i * 977 + 13);
    plain.record(i * 977 + 13);
  }
  const obs::Histogram snap = concurrent.snapshot();
  const auto q = obs::latency_quantiles(snap);
  (void)plain.quantile(0.99);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
  EXPECT_EQ(q.count, 10000u);
}

// --------------------------------------------- prometheus exposition

TEST(Telemetry, PrometheusLabelEscaping) {
  // The exposition-format escapes for label values: backslash, double
  // quote, and newline.  Everything else passes through untouched.
  EXPECT_EQ(obs::prometheus_escape_label("plain-0.9"), "plain-0.9");
  EXPECT_EQ(obs::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::prometheus_escape_label("a\nb"), "a\\nb");
  EXPECT_EQ(obs::prometheus_escape_label("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(obs::prometheus_escape_label(""), "");
}

TEST(Telemetry, PrometheusEveryFamilyHasTypeAndHelp) {
  obs::ScanTelemetry t;
  t.engine = "cpu\"over\nlapped\\x";  // hostile label value
  t.wall_seconds = 1.5;
  obs::StageTelemetry st;
  st.stage = "vit";
  st.busy_seconds = 0.5;
  st.counters.push_back({"warp\\div\"ergence", 3.0});
  t.stages.push_back(st);
  obs::QueueTelemetry q;
  q.capacity = 64;
  t.queue = q;
  std::ostringstream os;
  t.write_prometheus(os);
  const std::string text = os.str();

  // Hostile engine name arrives escaped, never raw.
  EXPECT_NE(text.find("cpu\\\"over\\nlapped\\\\x"), std::string::npos);
  EXPECT_EQ(text.find("over\nlapped"), std::string::npos);

  // Every sample line's family must have been declared with # TYPE and
  // # HELP before any sample appears.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string family = line.substr(0, name_end);
    EXPECT_NE(text.find("# TYPE " + family + " "), std::string::npos)
        << "undeclared family: " << family;
    EXPECT_NE(text.find("# HELP " + family + " "), std::string::npos)
        << "family without help: " << family;
  }
  // The previously undeclared counter family is covered too, with its
  // counter key escaped.
  EXPECT_NE(text.find("# TYPE finehmm_stage_counter gauge"),
            std::string::npos);
  EXPECT_NE(text.find("counter=\"warp\\\\div\\\"ergence\""),
            std::string::npos);
}

// ------------------------------------------------- structured logging

TEST(Log, LevelNamesRoundTrip) {
  using L = obs::LogLevel;
  for (L level : {L::kDebug, L::kInfo, L::kWarn, L::kError, L::kOff})
    EXPECT_EQ(obs::parse_log_level(obs::log_level_name(level)), level);
  EXPECT_EQ(obs::parse_log_level("nonsense"), L::kOff);
}

TEST(Log, JsonEscapeCoversControlCharacters) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Log, EmitsOneJsonLinePerEventAndFiltersByLevel) {
  std::ostringstream sink;
  obs::set_log_sink(&sink);
  obs::set_log_level(obs::LogLevel::kInfo);
  obs::log(obs::LogLevel::kDebug, "test.hidden");  // below threshold
  obs::log(obs::LogLevel::kWarn, "test.event",
           {{"name", std::string("a\"b\nc")},
            {"count", std::uint64_t{42}},
            {"delta", -7},
            {"ratio", 0.25},
            {"flag", true},
            {"broken", std::nan("")}});
  obs::set_log_level(obs::LogLevel::kOff);
  obs::set_log_sink(nullptr);

  const std::string text = sink.str();
  EXPECT_EQ(text.find("test.hidden"), std::string::npos);
  ASSERT_NE(text.find("test.event"), std::string::npos);
  EXPECT_NE(text.find("\"level\": \"warn\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\": "), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"a\\\"b\\nc\""), std::string::npos);
  EXPECT_NE(text.find("\"count\": 42"), std::string::npos);
  EXPECT_NE(text.find("\"delta\": -7"), std::string::npos);
  EXPECT_NE(text.find("\"flag\": true"), std::string::npos);
  EXPECT_NE(text.find("\"broken\": null"), std::string::npos);
  // Exactly one line, '\n'-terminated, structurally sound JSON.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Log, RateLimitCapsASiteAndAccountsEverySuppressedEvent) {
  obs::LogRateLimit limit(1);  // one event per second
  constexpr int kCalls = 1000;
  std::uint64_t reported = 0;
  int allowed = 0;
  for (int i = 0; i < kCalls; ++i) {
    std::uint64_t suppressed = 0;
    if (limit.allow(&suppressed)) {
      ++allowed;
      reported += suppressed;
    }
  }
  // The burst spans at most two one-second windows, so at most two
  // events clear the cap — the limiter held under a 1000-call storm.
  EXPECT_GE(allowed, 1);
  EXPECT_LE(allowed, 2);

  // After the window rolls over, the site re-opens and reports exactly
  // how many events the cap swallowed: every call — including the
  // failed polls below — was either allowed or reported as suppressed
  // precisely once.
  std::uint64_t final_suppressed = 0;
  std::uint64_t polls = 1;
  while (!limit.allow(&final_suppressed)) {
    ++polls;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ++allowed;
  reported += final_suppressed;
  EXPECT_EQ(reported + static_cast<std::uint64_t>(allowed),
            static_cast<std::uint64_t>(kCalls) + polls);
}

// ------------------------------------- engine wiring: the real invariants

struct TelemetryFixture {
  hmm::Plan7Hmm model;
  bio::SequenceDatabase db;

  explicit TelemetryFixture(int M = 80, std::size_t n = 500)
      : model(hmm::paper_model(M)) {
    pipeline::WorkloadSpec spec;
    spec.db.name = "obs-test";
    spec.db.n_sequences = n;
    spec.db.log_length_mu = 5.0;
    spec.db.log_length_sigma = 0.4;
    spec.db.seed = 4242;
    spec.homolog_fraction = 0.03;
    db = pipeline::make_workload(model, spec);
  }
};

TEST(EngineTelemetry, OverlappedQueueInvariantsHold) {
  TelemetryFixture fx;
  pipeline::HmmSearch search(fx.model);
  obs::Recorder rec;
  search.set_recorder(&rec);
  auto result = search.run_cpu_overlapped(fx.db, 3);

  ASSERT_TRUE(result.telemetry.has_value());
  const auto& t = *result.telemetry;
  ASSERT_TRUE(t.queue.has_value());
  const auto& q = *t.queue;
  // Every produced survivor is drained, stalls only ever reject (the
  // item is retried, not lost), rescues are stall responses, and the
  // ring never exceeds its capacity.
  EXPECT_EQ(q.dequeued, q.enqueued);
  EXPECT_EQ(q.enqueued, result.vit.n_in);
  EXPECT_LE(q.help_first_rescues, q.enqueue_stalls);
  EXPECT_LE(q.max_depth, q.capacity);
  if (q.enqueued > 0) {
    EXPECT_GE(q.max_depth, 1u);
  }
}

TEST(EngineTelemetry, PerThreadMergeMatchesGlobalTotals) {
  TelemetryFixture fx;
  pipeline::HmmSearch search(fx.model);
  obs::Recorder rec;
  search.set_recorder(&rec);
  auto result = search.run_cpu_overlapped(fx.db, 3);

  ASSERT_TRUE(result.telemetry.has_value());
  const auto& t = *result.telemetry;
  ASSERT_EQ(t.per_thread.size(), t.threads);

  // The stage rows and StageStats::seconds are both serial merges of the
  // same per-worker clocks, so they agree exactly — and re-summing the
  // per-thread rows reproduces them.
  struct Want {
    const char* name;
    obs::Stage stage;
    const pipeline::StageStats* stats;
  };
  const Want wants[] = {{"msv", obs::Stage::kMsv, &result.msv},
                        {"vit", obs::Stage::kVit, &result.vit},
                        {"fwd", obs::Stage::kFwd, &result.fwd}};
  for (const auto& w : wants) {
    const auto* row = t.stage(w.name);
    ASSERT_NE(row, nullptr) << w.name;
    EXPECT_DOUBLE_EQ(row->busy_seconds, w.stats->seconds) << w.name;
    double per_thread_sum = 0.0;
    for (const auto& th : t.per_thread)
      per_thread_sum += th.stage_busy_seconds[static_cast<int>(w.stage)];
    EXPECT_NEAR(per_thread_sum, row->busy_seconds,
                1e-9 * (1.0 + row->busy_seconds))
        << w.name;
    EXPECT_EQ(row->n_in, w.stats->n_in) << w.name;
    EXPECT_EQ(row->n_passed, w.stats->n_passed) << w.name;
  }

  // Bucket utilization sums back to the database.
  std::uint64_t bucket_seqs = 0, bucket_residues = 0;
  for (const auto& b : t.buckets) {
    bucket_seqs += b.sequences;
    bucket_residues += b.residues;
  }
  EXPECT_EQ(bucket_seqs, t.sequences);
  EXPECT_EQ(bucket_residues, t.residues);
  EXPECT_GT(t.wall_seconds, 0.0);
}

TEST(EngineTelemetry, OverlappedHitsMatchSerialWithRecorderAttached) {
  TelemetryFixture fx;
  pipeline::HmmSearch search(fx.model);
  auto serial = search.run_cpu(fx.db);
  EXPECT_FALSE(serial.telemetry.has_value());  // no recorder attached

  obs::Recorder rec;
  search.set_recorder(&rec);
  auto overlapped = search.run_cpu_overlapped(fx.db, 2);
  ASSERT_EQ(overlapped.hits.size(), serial.hits.size());
  for (std::size_t i = 0; i < serial.hits.size(); ++i) {
    EXPECT_EQ(overlapped.hits[i].seq_index, serial.hits[i].seq_index);
    EXPECT_EQ(overlapped.hits[i].fwd_bits, serial.hits[i].fwd_bits);
  }
  EXPECT_EQ(overlapped.msv.n_passed, serial.msv.n_passed);
  EXPECT_EQ(overlapped.fwd.n_in, serial.fwd.n_in);
  EXPECT_DOUBLE_EQ(overlapped.msv.cells, serial.msv.cells);
}

TEST(EngineTelemetry, SerialAndParallelEnginesReportTheSameSchema) {
  TelemetryFixture fx(60, 300);
  pipeline::HmmSearch search(fx.model);
  obs::Recorder rec;
  search.set_recorder(&rec);

  auto serial = search.run_cpu(fx.db);
  ASSERT_TRUE(serial.telemetry.has_value());
  EXPECT_EQ(serial.telemetry->engine, "cpu_serial");
  EXPECT_EQ(serial.telemetry->threads, 1u);
  EXPECT_FALSE(serial.telemetry->queue.has_value());

  rec.clear();
  auto parallel = search.run_cpu_parallel(fx.db, 2);
  ASSERT_TRUE(parallel.telemetry.has_value());
  EXPECT_EQ(parallel.telemetry->engine, "cpu_parallel");
  EXPECT_FALSE(parallel.telemetry->buckets.empty());
  // Parallel stages are barrier-separated: wall clocks are meaningful
  // and each stage's busy time cannot exceed crew * wall.
  for (const auto& st : parallel.telemetry->stages) {
    EXPECT_GE(st.wall_seconds, 0.0);
    EXPECT_LE(st.busy_seconds,
              static_cast<double>(parallel.telemetry->threads) *
                      parallel.telemetry->wall_seconds +
                  1e-6);
  }
  // Both engines agree on what was scanned.
  EXPECT_EQ(parallel.telemetry->sequences, serial.telemetry->sequences);
  EXPECT_EQ(parallel.telemetry->residues, serial.telemetry->residues);
  EXPECT_DOUBLE_EQ(parallel.telemetry->total_cells(),
                   serial.telemetry->total_cells());
}

}  // namespace
