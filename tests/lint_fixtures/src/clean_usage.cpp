// Lint fixture: the idiomatic way to do everything the bad_* fixtures
// get wrong.  Must produce ZERO findings (the self-test fails if any
// clean fixture is flagged).
#include <atomic>

namespace obs {
double safe_rate(double num, double den);
}

static std::atomic<int> flag{0};

double clean_usage(double cells, double elapsed_s, long* counter) {
  // Rates go through the guarded helper, never a raw division.
  double rate = obs::safe_rate(cells, elapsed_s);
  // Cross-thread state uses std::atomic with explicit memory order.
  flag.fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<long>(*counter).fetch_add(1, std::memory_order_relaxed);
  return rate;
}
