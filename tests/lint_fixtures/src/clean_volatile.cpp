// Lint fixture: a legitimate volatile (signal flag semantics, not
// inter-thread synchronization) excused for the whole file.  Must
// produce ZERO findings, proving allow-file() works.
// finehmm-lint: allow-file(raw-atomics)
#include <csignal>

static volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void clean_signal_handler(int) { g_interrupted = 1; }

bool clean_was_interrupted() { return g_interrupted != 0; }
