// Lint fixture: members declared directly after a `Mutex m;` member
// (its adjacency group) without a FINEHMM_GUARDED_BY annotation.  The
// group ends at a blank line or access specifier; CondVar and function
// declarations are exempt.  Expected: 2 x [guarded-by].
#pragma once

class BadGuarded {
 public:
  void tick();
  int peek() const;

 private:
  Mutex mu_;
  int guarded_ok_ FINEHMM_GUARDED_BY(mu_) = 0;
  // A comment between members does not end the adjacency group.
  int missing_annotation_ = 0;
  CondVar cv_;
  long also_missing_;
  void helper_decl_is_exempt() const;

  int after_blank_line_ok_ = 0;
};

namespace fixture_ns {

Mutex g_fixture_mu;
int g_guarded FINEHMM_GUARDED_BY(g_fixture_mu) = 0;

int g_unrelated_after_blank = 0;

}  // namespace fixture_ns
