// Lint fixture: legacy __sync/__atomic builtins and volatile used as a
// synchronization primitive.  Expected: 3 x [raw-atomics].
static volatile int flag = 0;

long bad_atomics(long* counter) {
  __sync_fetch_and_add(counter, 1);
  long v = __atomic_load_n(counter, 2);
  return v + flag;
}
