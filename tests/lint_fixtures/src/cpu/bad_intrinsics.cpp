// Lint fixture: raw intrinsics OUTSIDE src/cpu/simd_backend/.
// Every line below must be flagged [simd-intrinsics].
#include <emmintrin.h>

void leak_intrinsics() {
  __m128i acc{};
  acc = _mm_adds_epu8(acc, acc);
  (void)acc;
}
