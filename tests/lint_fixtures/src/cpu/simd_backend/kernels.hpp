// Lint fixture: a kernel file (path matches KERNEL_FILES) that breaks
// the no-heap / no-throw contract.  Expected: 4 x [kernel-heap],
// 3 x [kernel-throw], and one heap line excused by a suppression.
#pragma once
#include <vector>

inline void bad_kernel(int n) {
  int* scratch = new int[static_cast<unsigned>(n)];
  void* raw = malloc(static_cast<unsigned>(n));
  std::vector<int> buf;
  buf.resize(static_cast<unsigned>(n));

  if (n < 0) throw 42;
  FH_REQUIRE(n > 0, "n must be positive");
  FH_ASSERT(scratch != nullptr);

  // finehmm-lint: allow(kernel-heap) -- demo: suppressed scratch buffer
  std::vector<int> allowed_scratch;

  (void)raw;
  (void)allowed_scratch;
  delete[] scratch;
}
