// Lint fixture: lexically nested MutexLock acquisitions that break the
// declared lock-order registry (the fixture registry lives in
// tests/lint_fixtures/docs/static_analysis.md: alpha_mu_ = rank 1,
// beta_mu_ = rank 2).  Expected: 2 x [lock-order].

// Correct order (rank 1 before rank 2): must NOT be flagged.
void good_nesting(Mutex& alpha_mu_, Mutex& beta_mu_) {
  MutexLock outer(alpha_mu_);
  {
    MutexLock inner(beta_mu_);
  }
}

// Inversion: beta (rank 2) held while taking alpha (rank 1).
void bad_inversion(Mutex& alpha_mu_, Mutex& beta_mu_) {
  MutexLock outer(beta_mu_);
  MutexLock inner(alpha_mu_);
}

// Nesting a mutex the registry does not even name.
void bad_unregistered(Mutex& alpha_mu_, Mutex& rogue_mu_) {
  MutexLock outer(alpha_mu_);
  MutexLock inner(rogue_mu_);
}

// Sequential (non-nested) acquisitions in any order are fine.
void good_sequential(Mutex& alpha_mu_, Mutex& beta_mu_) {
  {
    MutexLock only(beta_mu_);
  }
  {
    MutexLock only(alpha_mu_);
  }
}
