// Lint fixture: raw standard-library mutex primitives outside the
// annotated util::Mutex capability wrapper.  The thread-safety
// analysis cannot see locks taken through std::mutex directly, so the
// whole family is banned (docs/static_analysis.md).  Expected:
// 4 x [raw-mutex].
#include <condition_variable>
#include <mutex>

class BadRawMutex {
 public:
  void touch() {
    std::lock_guard<std::mutex> lock(mu_);
    ++value_;
  }
  void wait_ready() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int value_ = 0;
};
