// Lint fixture: suppressions that no longer suppress anything.  Both
// the allow-file() below (this is not a kernel file, so kernel-heap can
// never fire here) and the allow() further down (the volatile it once
// covered is gone) must be reported STALE by --list-suppressions and
// the stale-suppression warning; the self-test asserts exactly these
// two and nothing else.  Must produce ZERO findings.
// finehmm-lint: allow-file(kernel-heap) -- stale on purpose
#include <atomic>

int tidy_counter() {
  static std::atomic<int> n{0};
  // finehmm-lint: allow(raw-atomics) -- stale on purpose
  return n.fetch_add(1, std::memory_order_relaxed);
}
