// Lint fixture: the tokenizer must resynchronize after a raw string
// literal — the mentions of banned constructs INSIDE the literal are
// not findings, but the real violation AFTER it still is.  Expected:
// 1 x [raw-atomics].
const char* kDecoy =
    R"({"note": "volatile std::mutex _mm_add_epi8( cells / elapsed_s"})";
volatile int racy_flag = 0;
