// Lint fixture: raw string literals — plain, custom-delimiter,
// multi-line, and prefixed — whose CONTENTS mention banned constructs.
// A per-line scanner without raw-string support would flag all of
// these; the tokenizer must produce ZERO findings here.
const char* plain = R"(volatile __sync_fetch_and_add std::mutex)";
const char* custom = R"delim(
  _mm_add_epi8(x, y); __m256i v; std::lock_guard<std::mutex> g(m);
  double r = cells / elapsed_s;  throw;
)delim";
const char* prefixed = u8R"(std::condition_variable cv; volatile int x;)";
// An ordinary identifier ending in R followed by a string is NOT a raw
// string; the quote below must terminate normally.
const char* not_raw = "plain string with ) quote stays balanced";

int after_all_literals() { return 0; }
