// Lint fixture: rate computations dividing by a raw elapsed time
// instead of going through obs::valid_rate/safe_rate.  Expected:
// 3 x [unguarded-rate].
struct Timer {
  double seconds() { return 0.0; }
};

double bad_rates(double cells, double gpu_time, double elapsed) {
  Timer t;
  double a = cells / gpu_time;
  double b = cells / elapsed;
  double c = cells / t.seconds();
  return a + b + c;
}
