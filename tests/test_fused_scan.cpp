// Fused many-model scan: the lane-packing auto-tuner and the parity
// contract of docs/multi_model.md — for any model group, at every
// supported tier, the fused MSV/SSV sweep and the whole fused hmmscan
// pipeline must match N independent single-model runs bit for bit.
//
// The kernel tests drive the saturation edges deliberately (per-member
// "hot" sequences of the member's cheapest residue) because the fused
// trigger/overflow bookkeeping is exactly where per-model state could
// leak across lane spans.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

#include "bio/synthetic.hpp"
#include "cpu/msv_filter.hpp"
#include "cpu/msv_group.hpp"
#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "cpu/ssv.hpp"
#include "hmm/generator.hpp"
#include "hmm/model_group.hpp"
#include "hmm/profile.hpp"
#include "pipeline/multi_search.hpp"
#include "pipeline/report.hpp"
#include "profile/msv_profile.hpp"

namespace {

using namespace finehmm;
using cpu::SimdTier;

// ---------------------------------------------------------------------
// Auto-tuner unit tests (hmm::plan_model_groups / length_histogram).
// ---------------------------------------------------------------------

std::vector<std::size_t> coverage(const hmm::FusePlan& plan,
                                  std::size_t n_models) {
  std::vector<std::size_t> seen(n_models, 0);
  for (const auto& g : plan.groups)
    for (std::size_t m : g.members) seen.at(m) += 1;
  for (std::size_t m : plan.unfused) seen.at(m) += 1;
  return seen;
}

TEST(FusePlanner, CoversEveryModelExactlyOnceAtEveryLaneWidth) {
  const std::vector<int> lengths = {60,  75,  48,  90,  110, 130, 24,
                                    33,  500, 61,  58,  3000, 47, 95,
                                    140, 70,  55,  88,  120, 42};
  for (int lanes : {16, 32, 64}) {
    auto plan = hmm::plan_model_groups(lengths, lanes);
    EXPECT_EQ(plan.lane_width, lanes);
    for (std::size_t n : coverage(plan, lengths.size()))
      EXPECT_EQ(n, 1u) << "lanes=" << lanes;
    for (const auto& g : plan.groups) {
      EXPECT_GE(g.Q, 1);
      EXPECT_GE(g.members.size(), 2u);
      EXPECT_LE(g.lanes_used, lanes);
      EXPECT_GT(g.occupancy, 0.0);
      EXPECT_LE(g.occupancy, 1.0);
      int demand = 0;
      for (std::size_t m : g.members) demand += lengths[m] / g.Q + 1;
      EXPECT_EQ(demand, g.lanes_used);
    }
    // Deterministic: same inputs, same plan.
    auto again = hmm::plan_model_groups(lengths, lanes);
    ASSERT_EQ(again.groups.size(), plan.groups.size());
    for (std::size_t i = 0; i < plan.groups.size(); ++i) {
      EXPECT_EQ(again.groups[i].members, plan.groups[i].members);
      EXPECT_EQ(again.groups[i].Q, plan.groups[i].Q);
    }
    EXPECT_EQ(again.unfused, plan.unfused);
  }
}

TEST(FusePlanner, PacksManyShortModelsIntoOneWideGroup) {
  std::vector<int> lengths(32, 60);
  auto plan = hmm::plan_model_groups(lengths, 32);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_TRUE(plan.unfused.empty());
  EXPECT_EQ(plan.fused_models(), 32u);
  EXPECT_EQ(plan.groups[0].lanes_used, 32);
  // One lane per model needs Q > 60; minimal Q keeps occupancy high.
  EXPECT_EQ(plan.groups[0].Q, 61);
  EXPECT_GT(plan.lane_occupancy(), 0.9);
  EXPECT_DOUBLE_EQ(plan.models_per_group(), 32.0);
}

TEST(FusePlanner, LongModelsStayUnfusedUnlessForced) {
  // Default threshold at 16 lanes is 32 * 16 = 512 positions.
  const std::vector<int> lengths = {2000, 1900, 2100, 1800};
  auto plan = hmm::plan_model_groups(lengths, 16);
  EXPECT_TRUE(plan.groups.empty());
  EXPECT_EQ(plan.unfused.size(), lengths.size());

  hmm::FuseOptions opts;
  opts.forced = true;
  opts.max_table_bytes = 16 * 1024 * 1024;  // don't let the cap interfere
  auto forced = hmm::plan_model_groups(lengths, 16, opts);
  EXPECT_FALSE(forced.groups.empty());
  EXPECT_EQ(forced.fused_models(), lengths.size());
}

TEST(FusePlanner, DisabledPutsEverythingUnfused) {
  hmm::FuseOptions opts;
  opts.enabled = false;
  auto plan = hmm::plan_model_groups({50, 60, 70, 80}, 32, opts);
  EXPECT_TRUE(plan.groups.empty());
  EXPECT_EQ(plan.unfused.size(), 4u);
  EXPECT_EQ(plan.fused_models(), 0u);
  EXPECT_DOUBLE_EQ(plan.lane_occupancy(), 0.0);
}

TEST(FusePlanner, TableByteCapBoundsEveryGroup) {
  std::vector<int> lengths;
  for (int i = 0; i < 24; ++i) lengths.push_back(200 + 13 * i);
  hmm::FuseOptions opts;
  opts.max_table_bytes = 64 * 1024;
  auto plan = hmm::plan_model_groups(lengths, 64, opts);
  for (std::size_t n : coverage(plan, lengths.size())) EXPECT_EQ(n, 1u);
  for (const auto& g : plan.groups)
    EXPECT_LE(static_cast<std::size_t>(bio::kKp) * g.Q * 64,
              opts.max_table_bytes);
}

TEST(FusePlanner, MaxGroupModelsCapsChunkSize) {
  std::vector<int> lengths(20, 45);
  hmm::FuseOptions opts;
  opts.max_group_models = 5;
  auto plan = hmm::plan_model_groups(lengths, 64, opts);
  for (std::size_t n : coverage(plan, lengths.size())) EXPECT_EQ(n, 1u);
  for (const auto& g : plan.groups) EXPECT_LE(g.members.size(), 5u);
  EXPECT_EQ(plan.fused_models(), 20u);
}

TEST(FusePlanner, EnvVariableControlsPolicy) {
  ::setenv("FINEHMM_FUSE", "off", 1);
  EXPECT_FALSE(hmm::fuse_options_from_env().enabled);
  ::setenv("FINEHMM_FUSE", "force", 1);
  EXPECT_TRUE(hmm::fuse_options_from_env().forced);
  ::setenv("FINEHMM_FUSE", "force:8", 1);
  {
    auto opts = hmm::fuse_options_from_env();
    EXPECT_TRUE(opts.forced);
    EXPECT_EQ(opts.max_group_models, 8);
  }
  ::setenv("FINEHMM_FUSE", "auto", 1);
  {
    auto opts = hmm::fuse_options_from_env();
    EXPECT_TRUE(opts.enabled);
    EXPECT_FALSE(opts.forced);
  }
  ::unsetenv("FINEHMM_FUSE");
  EXPECT_TRUE(hmm::fuse_options_from_env().enabled);
}

TEST(FusePlanner, LengthHistogramDoublesBucketWidths) {
  const std::vector<int> lengths = {5, 17, 40, 45, 80, 300, 300, 2000};
  auto buckets = hmm::length_histogram(lengths);
  std::size_t total = 0;
  for (const auto& b : buckets) {
    EXPECT_LT(b.lo, b.hi);
    EXPECT_GT(b.count, 0u);
    total += b.count;
  }
  ASSERT_GE(buckets.size(), 4u);
  EXPECT_EQ(total, lengths.size());
  // Buckets are ordered and non-overlapping.
  for (std::size_t i = 1; i < buckets.size(); ++i)
    EXPECT_GE(buckets[i].lo, buckets[i - 1].hi);
}

// ---------------------------------------------------------------------
// Kernel parity: fused group sweep vs. single-model MsvFilter / SSV.
// ---------------------------------------------------------------------

struct ModelFx {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  profile::MsvProfile msv;

  ModelFx(int M, std::uint64_t seed)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          return hmm::generate_hmm(spec);
        }()),
        prof(model, hmm::AlignMode::kLocalMultihit, 400),
        msv(prof) {}
};

std::vector<std::unique_ptr<ModelFx>> make_models(
    const std::vector<int>& lengths) {
  std::vector<std::unique_ptr<ModelFx>> fxs;
  std::uint64_t seed = 7;
  for (int M : lengths)
    fxs.push_back(std::make_unique<ModelFx>(M, seed++));
  return fxs;
}

/// Random sequences plus, per member, a long run of that member's
/// cheapest residue — each one saturates a different lane span, so the
/// per-model overflow freeze is exercised while neighbours keep scoring.
std::vector<bio::Sequence> parity_sequences(
    const std::vector<std::unique_ptr<ModelFx>>& fxs) {
  Pcg32 rng(99);
  std::vector<bio::Sequence> seqs;
  for (int rep = 0; rep < 5; ++rep)
    seqs.push_back(bio::random_sequence(1 + rng.below(400), rng));
  seqs.push_back(bio::random_sequence(1, rng));
  for (const auto& fx : fxs) {
    int best = 0;
    long best_cost = -1;
    for (int x = 0; x < bio::kK; ++x) {
      const std::uint8_t* row = fx->msv.linear_row(x);
      long cost = 0;
      for (int k = 0; k < fx->msv.length(); ++k) cost += row[k];
      if (best_cost < 0 || cost < best_cost) {
        best_cost = cost;
        best = x;
      }
    }
    bio::Sequence hot;
    hot.name = "hot";
    hot.codes.assign(900, static_cast<std::uint8_t>(best));
    seqs.push_back(std::move(hot));
  }
  return seqs;
}

void check_group_parity(const std::vector<std::unique_ptr<ModelFx>>& fxs,
                        const std::vector<std::size_t>& members, int Q,
                        SimdTier tier, int lane_width,
                        const std::vector<bio::Sequence>& seqs) {
  std::vector<const profile::MsvProfile*> profs;
  for (std::size_t m : members) profs.push_back(&fxs[m]->msv);
  cpu::FusedMsvGroup group(profs, lane_width, Q);
  cpu::FusedMsvFilter filter(group, tier);
  std::vector<cpu::FilterResult> fused(group.size());

  for (const auto& seq : seqs) {
    filter.msv(seq.codes.data(), seq.length(), fused.data());
    for (std::size_t i = 0; i < members.size(); ++i) {
      cpu::MsvFilter single(fxs[members[i]]->msv, tier);
      auto ref = single.score(seq.codes.data(), seq.length());
      EXPECT_EQ(ref.overflowed, fused[i].overflowed)
          << "msv tier=" << cpu::simd_tier_name(tier) << " Q=" << Q
          << " member=" << i << " L=" << seq.length();
      EXPECT_EQ(ref.score_nats, fused[i].score_nats)
          << "msv tier=" << cpu::simd_tier_name(tier) << " Q=" << Q
          << " member=" << i << " L=" << seq.length();
    }
    filter.ssv(seq.codes.data(), seq.length(), fused.data());
    for (std::size_t i = 0; i < members.size(); ++i) {
      auto ref = cpu::ssv_scalar(fxs[members[i]]->msv, seq.codes.data(),
                                 seq.length());
      EXPECT_EQ(ref.overflowed, fused[i].overflowed)
          << "ssv tier=" << cpu::simd_tier_name(tier) << " Q=" << Q
          << " member=" << i << " L=" << seq.length();
      EXPECT_EQ(ref.score_nats, fused[i].score_nats)
          << "ssv tier=" << cpu::simd_tier_name(tier) << " Q=" << Q
          << " member=" << i << " L=" << seq.length();
    }
  }
}

TEST(FusedKernels, PlannedGroupsMatchSingleModelAtEverySupportedTier) {
  const std::vector<int> lengths = {48, 60, 75, 90, 110, 130, 24, 33};
  auto fxs = make_models(lengths);
  auto seqs = parity_sequences(fxs);
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    const int lane_width =
        cpu::backend::tier_kernels(cpu::resolve_simd_tier(tier)).u8_lanes;
    hmm::FuseOptions opts;
    opts.forced = true;
    auto plan = hmm::plan_model_groups(lengths, lane_width, opts);
    ASSERT_FALSE(plan.groups.empty())
        << "tier=" << cpu::simd_tier_name(tier);
    for (const auto& g : plan.groups)
      check_group_parity(fxs, g.members, g.Q, tier, lane_width, seqs);
  }
}

TEST(FusedKernels, MultiLaneSpansMatchSingleModel) {
  // A hand-built shape where every member spans several lanes, so the
  // inter-lane shift crosses span boundaries many times per row.
  const std::vector<int> lengths = {48, 90, 60};
  auto fxs = make_models(lengths);
  auto seqs = parity_sequences(fxs);
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    const int lane_width =
        cpu::backend::tier_kernels(cpu::resolve_simd_tier(tier)).u8_lanes;
    // Q=31: lane demand 2 + 3 + 2 = 7 <= 16 <= any lane width.
    check_group_parity(fxs, {0, 1, 2}, 31, tier, lane_width, seqs);
    // Q=13: demand 3 + 7 + 5 = 15, still within the narrowest tier.
    check_group_parity(fxs, {0, 1, 2}, 13, tier, lane_width, seqs);
  }
}

TEST(FusedKernels, ZeroLengthSequenceYieldsDefaultNoHit) {
  auto fxs = make_models({40, 55});
  const int lane_width =
      cpu::backend::tier_kernels(cpu::resolve_simd_tier(
                                     cpu::active_simd_tier()))
          .u8_lanes;
  cpu::FusedMsvGroup group({&fxs[0]->msv, &fxs[1]->msv}, lane_width, 56);
  cpu::FusedMsvFilter filter(group);
  std::vector<cpu::FilterResult> fused(2);
  filter.msv(nullptr, 0, fused.data());
  for (const auto& r : fused) {
    EXPECT_FALSE(r.overflowed);
    EXPECT_EQ(r.score_nats, -std::numeric_limits<float>::infinity());
  }
}

// ---------------------------------------------------------------------
// Pipeline parity: MultiSearch::run_cpu_fused vs. N sequential run_cpu
// scans — hit lists, stage counts, and tblout output bit-identical.
// ---------------------------------------------------------------------

bio::SequenceDatabase scan_db(std::size_t n, std::uint64_t seed) {
  bio::SyntheticDbSpec spec;
  spec.name = "test";
  spec.n_sequences = n;
  spec.min_length = 10;
  spec.max_length = 600;
  spec.seed = seed;
  auto db = bio::generate_database(spec);
  bio::Sequence empty;
  empty.name = "empty";
  db.add(std::move(empty));  // L=0 must flow through the fused sweep
  return db;
}

pipeline::MultiSearch make_multi(int n_models) {
  std::vector<hmm::Plan7Hmm> models;
  Pcg32 rng(1234);
  for (int i = 0; i < n_models; ++i) {
    hmm::RandomHmmSpec spec;
    spec.length = 40 + static_cast<int>(rng.below(80));
    spec.seed = 100 + static_cast<std::uint64_t>(i);
    models.push_back(hmm::generate_hmm(spec));
  }
  stats::CalibrateOptions calib;
  calib.n_samples = 40;
  pipeline::Thresholds thr;
  thr.use_ssv_prefilter = true;
  thr.report_evalue = 1e6;  // report plenty of hits so equality is strict
  return pipeline::MultiSearch(std::move(models), thr, calib);
}

void expect_results_identical(
    const std::vector<pipeline::ModelResult>& ref,
    const std::vector<pipeline::ModelResult>& got) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t m = 0; m < ref.size(); ++m) {
    const auto& a = ref[m].result;
    const auto& b = got[m].result;
    EXPECT_EQ(ref[m].model_name, got[m].model_name);
    EXPECT_EQ(a.ssv.n_in, b.ssv.n_in) << "model=" << m;
    EXPECT_EQ(a.ssv.n_passed, b.ssv.n_passed) << "model=" << m;
    EXPECT_EQ(a.msv.n_in, b.msv.n_in) << "model=" << m;
    EXPECT_EQ(a.msv.n_passed, b.msv.n_passed) << "model=" << m;
    EXPECT_EQ(a.vit.n_in, b.vit.n_in) << "model=" << m;
    EXPECT_EQ(a.vit.n_passed, b.vit.n_passed) << "model=" << m;
    EXPECT_EQ(a.fwd.n_in, b.fwd.n_in) << "model=" << m;
    EXPECT_EQ(a.fwd.n_passed, b.fwd.n_passed) << "model=" << m;
    ASSERT_EQ(a.hits.size(), b.hits.size()) << "model=" << m;
    for (std::size_t i = 0; i < a.hits.size(); ++i) {
      EXPECT_EQ(a.hits[i].seq_index, b.hits[i].seq_index);
      EXPECT_EQ(a.hits[i].name, b.hits[i].name);
      EXPECT_EQ(a.hits[i].msv_bits, b.hits[i].msv_bits);
      EXPECT_EQ(a.hits[i].vit_bits, b.hits[i].vit_bits);
      EXPECT_EQ(a.hits[i].fwd_bits, b.hits[i].fwd_bits);
      EXPECT_EQ(a.hits[i].bias_bits, b.hits[i].bias_bits);
      EXPECT_EQ(a.hits[i].pvalue, b.hits[i].pvalue);
      EXPECT_EQ(a.hits[i].evalue, b.hits[i].evalue);
    }
  }
}

TEST(FusedPipeline, FusedHitsAndTbloutMatchSequentialScan) {
  auto multi = make_multi(32);
  auto db = scan_db(50, 23);

  auto serial = multi.run_cpu(db);
  obs::ScanTelemetry telemetry;
  auto fused = multi.run_cpu_fused(db, 3, nullptr, &telemetry);
  expect_results_identical(serial, fused);

  // The machine-readable table must match byte for byte, model by model.
  pipeline::DbSummary summary{db.size(), db.total_residues()};
  for (std::size_t m = 0; m < serial.size(); ++m) {
    std::ostringstream want, have;
    pipeline::write_tblout(want, serial[m].result,
                           multi.search(m).profile(), summary);
    pipeline::write_tblout(have, fused[m].result,
                           multi.search(m).profile(), summary);
    EXPECT_EQ(want.str(), have.str()) << "model=" << m;
  }

  // Telemetry: the batch snapshot reports the fused engine and the
  // lane-occupancy counters on the msv stage.
  EXPECT_EQ(telemetry.engine, "cpu_fused");
  double groups = 0, fused_models = 0, occupancy = -1;
  for (const auto& st : telemetry.stages) {
    if (st.stage != "msv") continue;
    for (const auto& [key, value] : st.counters) {
      if (key == "fuse.groups") groups = value;
      if (key == "fuse.fused_models") fused_models = value;
      if (key == "fuse.lane_occupancy") occupancy = value;
    }
  }
  EXPECT_GE(groups, 1.0);
  EXPECT_EQ(fused_models, 32.0);
  EXPECT_GT(occupancy, 0.0);
  EXPECT_LE(occupancy, 1.0);
}

TEST(FusedPipeline, ExplicitPlanAndAutoPlanAgree) {
  auto multi = make_multi(12);
  auto db = scan_db(30, 5);
  const int lane_width =
      cpu::backend::tier_kernels(cpu::resolve_simd_tier(
                                     cpu::active_simd_tier()))
          .u8_lanes;
  auto plan = hmm::plan_model_groups(multi.model_lengths(), lane_width);
  auto with_plan = multi.run_cpu_fused(db, 2, &plan);
  auto auto_plan = multi.run_cpu_fused(db, 2);
  expect_results_identical(with_plan, auto_plan);
}

TEST(FusedPipeline, EnvOffFallsBackToUnfusedAndStillMatches) {
  auto multi = make_multi(6);
  auto db = scan_db(25, 17);
  auto serial = multi.run_cpu(db);

  ::setenv("FINEHMM_FUSE", "off", 1);
  obs::ScanTelemetry telemetry;
  auto fused = multi.run_cpu_fused(db, 2, nullptr, &telemetry);
  ::unsetenv("FINEHMM_FUSE");

  expect_results_identical(serial, fused);
  for (const auto& st : telemetry.stages) {
    if (st.stage != "msv") continue;
    for (const auto& [key, value] : st.counters) {
      if (key == "fuse.groups") {
        EXPECT_EQ(value, 0.0);
      }
    }
  }
}

}  // namespace
