// Portable SIMD vector lane semantics.
#include <gtest/gtest.h>

#include "cpu/simd_vec.hpp"

namespace {

using namespace finehmm::cpu;

TEST(U8x16, SaturatingOps) {
  auto a = U8x16::splat(200);
  auto b = U8x16::splat(100);
  EXPECT_EQ(adds_u8(a, b).v[7], 255);
  EXPECT_EQ(subs_u8(b, a).v[7], 0);
  EXPECT_EQ(subs_u8(a, b).v[7], 100);
  EXPECT_EQ(max_u8(a, b).v[0], 200);
}

TEST(U8x16, ShiftLanesUp) {
  U8x16 a;
  for (int i = 0; i < 16; ++i) a.v[i] = static_cast<std::uint8_t>(i + 1);
  auto s = shift_lanes_up(a, 99);
  EXPECT_EQ(s.v[0], 99);
  for (int i = 1; i < 16; ++i) EXPECT_EQ(s.v[i], i);
}

TEST(U8x16, HorizontalMax) {
  U8x16 a = U8x16::zero();
  a.v[11] = 42;
  EXPECT_EQ(hmax_u8(a), 42);
  EXPECT_EQ(hmax_u8(U8x16::zero()), 0);
}

TEST(U8x16, LoadStoreRoundTrip) {
  std::uint8_t buf[16];
  for (int i = 0; i < 16; ++i) buf[i] = static_cast<std::uint8_t>(i * 3);
  auto v = U8x16::load(buf);
  std::uint8_t out[16];
  v.store(out);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], buf[i]);
}

TEST(I16x8, StickyNegInfAdd) {
  auto ninf = I16x8::neg_inf();
  auto big = I16x8::splat(30000);
  EXPECT_EQ(adds_w(ninf, big).v[3], finehmm::profile::kWordNegInf);
  EXPECT_EQ(adds_w(big, big).v[3], 32767);
  auto small = I16x8::splat(-30000);
  EXPECT_EQ(adds_w(small, small).v[3], -32767);
}

TEST(I16x8, ShiftAndMax) {
  I16x8 a;
  for (int i = 0; i < 8; ++i) a.v[i] = static_cast<std::int16_t>(i * 100);
  auto s = shift_lanes_up(a);
  EXPECT_EQ(s.v[0], finehmm::profile::kWordNegInf);
  EXPECT_EQ(s.v[7], 600);
  EXPECT_EQ(hmax_i16(a), 700);
}

TEST(I16x8, AnyGt) {
  auto a = I16x8::splat(5);
  auto b = I16x8::splat(5);
  EXPECT_FALSE(any_gt_i16(a, b));
  a.v[6] = 6;
  EXPECT_TRUE(any_gt_i16(a, b));
  EXPECT_FALSE(any_gt_i16(b, a));
}

}  // namespace
