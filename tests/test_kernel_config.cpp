// Shared-memory layouts and launch planning invariants.
#include <gtest/gtest.h>

#include "gpu/kernel_config.hpp"
#include "hmm/generator.hpp"

namespace {

using namespace finehmm;
using gpu::MsvSmemLayout;
using gpu::VitSmemLayout;

TEST(SmemLayout, MsvRegionsAreDisjoint) {
  MsvSmemLayout l;
  l.mpad = 416;  // M=400
  l.warps = 8;
  l.shared_params = true;
  // Param rows end where warp rows start.
  EXPECT_EQ(l.param_row_offset(bio::kKp - 1) + l.mpad, l.param_bytes());
  for (int w = 0; w < l.warps; ++w) {
    EXPECT_GE(l.row_offset(w), l.param_bytes());
    if (w > 0) {
      EXPECT_EQ(l.row_offset(w), l.row_offset(w - 1) + l.row_elems());
    }
  }
  EXPECT_LE(l.row_offset(l.warps - 1) + l.row_elems(), l.total_bytes());
}

TEST(SmemLayout, VitRegionsAreDisjoint) {
  VitSmemLayout l;
  l.mpad = 128;
  l.warps = 4;
  l.shared_params = true;
  // The 7 transition arrays follow the emission table contiguously.
  EXPECT_EQ(l.trans_offset(0), static_cast<std::size_t>(bio::kKp) * l.mpad * 2);
  EXPECT_EQ(l.trans_offset(6) + l.mpad * 2, l.param_bytes());
  for (int w = 0; w < l.warps; ++w)
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(l.row_offset(w, a), l.param_bytes());
      EXPECT_LE(l.row_offset(w, a) + l.row_elems() * 2, l.total_bytes());
    }
  // M/I/D rows of one warp do not overlap.
  EXPECT_EQ(l.row_offset(0, 1), l.row_offset(0, 0) + l.row_elems() * 2);
  EXPECT_EQ(l.row_offset(1, 0), l.row_offset(0, 2) + l.row_elems() * 2);
}

TEST(SmemLayout, GlobalPlacementDropsParamRegion) {
  MsvSmemLayout shared, global;
  shared.mpad = global.mpad = 800;
  shared.warps = global.warps = 8;
  shared.shared_params = true;
  global.shared_params = false;
  EXPECT_EQ(global.param_bytes(), 0u);
  EXPECT_LT(global.total_bytes(), shared.total_bytes());
}

TEST(LaunchPlan, SmemFitsDeviceForEveryFeasiblePlan) {
  for (const auto& dev :
       {simt::DeviceSpec::tesla_k40(), simt::DeviceSpec::gtx580()}) {
    for (int M : hmm::kPaperModelSizes) {
      for (auto stage : {gpu::Stage::kMsv, gpu::Stage::kViterbi}) {
        for (auto placement :
             {gpu::ParamPlacement::kShared, gpu::ParamPlacement::kGlobal}) {
          auto plan = gpu::plan_launch(stage, placement, M, dev);
          if (!plan.feasible) continue;
          EXPECT_LE(plan.cfg.smem_bytes_per_block, dev.shared_mem_per_block);
          EXPECT_GE(plan.cfg.warps_per_block, 1);
          EXPECT_GE(plan.cfg.grid_blocks, 1);
          EXPECT_GT(plan.occ.warps_per_sm, 0);
        }
      }
    }
  }
}

TEST(LaunchPlan, GlobalIsAlwaysFeasibleForPaperSizes) {
  // The DP rows alone always fit; only shared params can overflow.
  for (const auto& dev :
       {simt::DeviceSpec::tesla_k40(), simt::DeviceSpec::gtx580()}) {
    for (int M : hmm::kPaperModelSizes) {
      auto plan = gpu::plan_launch(gpu::Stage::kMsv,
                                   gpu::ParamPlacement::kGlobal, M, dev);
      EXPECT_TRUE(plan.feasible) << dev.name << " M=" << M;
    }
  }
}

TEST(LaunchPlan, MsvSharedInfeasibleOnlyBeyond1528) {
  // §IV: "models of size 1528 could be accommodated within the shared
  // memory" for MSV; 2405 cannot.
  auto dev = simt::DeviceSpec::tesla_k40();
  EXPECT_TRUE(gpu::plan_launch(gpu::Stage::kMsv,
                               gpu::ParamPlacement::kShared, 1528, dev)
                  .feasible);
  EXPECT_FALSE(gpu::plan_launch(gpu::Stage::kMsv,
                                gpu::ParamPlacement::kShared, 2405, dev)
                   .feasible);
}

TEST(LaunchPlan, FermiScratchIsAccounted) {
  MsvSmemLayout kepler, fermi;
  kepler.mpad = fermi.mpad = 128;
  kepler.warps = fermi.warps = 8;
  kepler.shuffle_scratch = false;
  fermi.shuffle_scratch = true;
  EXPECT_EQ(fermi.total_bytes() - kepler.total_bytes(),
            8u * simt::kWarpSize * 4);
}

}  // namespace
