// Utility layer: RNG distributions, log-space table, thread pool, text
// tables, aligned allocation, work queue.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>

#include "simt/grid.hpp"
#include "util/aligned.hpp"
#include "util/error.hpp"
#include "util/logspace.hpp"
#include "util/mpmc_queue.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace finehmm;

TEST(Rng, DeterministicPerSeed) {
  Pcg32 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    auto va = a.next();
    EXPECT_EQ(va, b.next());
  }
  bool differs = false;
  Pcg32 a2(42);
  for (int i = 0; i < 100; ++i)
    if (a2.next() != c.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Pcg32 rng(7);
  int counts[10] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.below(10)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 / 5);
}

TEST(Rng, GaussianMomentsMatch) {
  Pcg32 rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.gaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, DirichletSumsToOne) {
  Pcg32 rng(3);
  for (double alpha : {0.1, 1.0, 10.0}) {
    auto v = rng.dirichlet(20, alpha);
    double total = 0.0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Pcg32 rng(5);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.06);
}

TEST(Logspace, TableMatchesExactWithinTolerance) {
  Pcg32 rng(9);
  for (int i = 0; i < 2000; ++i) {
    float a = static_cast<float>(rng.uniform(-30.0, 30.0));
    float b = static_cast<float>(rng.uniform(-30.0, 30.0));
    EXPECT_NEAR(logsum(a, b), logsum_exact(a, b), 2e-3f);
  }
}

TEST(Logspace, NegInfIsIdentity) {
  EXPECT_FLOAT_EQ(logsum(kNegInf, 3.5f), 3.5f);
  EXPECT_FLOAT_EQ(logsum(3.5f, kNegInf), 3.5f);
  EXPECT_EQ(logsum(kNegInf, kNegInf), kNegInf);
}

TEST(Logspace, CommutativeAndMonotone) {
  EXPECT_FLOAT_EQ(logsum(1.0f, 2.0f), logsum(2.0f, 1.0f));
  EXPECT_GT(logsum(5.0f, 5.0f), 5.0f);
  EXPECT_LT(logsum(5.0f, 5.0f), 6.0f);  // log(2e^5) = 5.69
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 7) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round)
    pool.parallel_for(100, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, RunWorkersGivesDenseDistinctIds) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(4);
  for (auto& s : seen) s = 0;
  pool.run_workers(4, [&](std::size_t w) {
    ASSERT_LT(w, 4u);
    seen[w]++;
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, RunWorkersClampsToPoolSize) {
  ThreadPool pool(2);
  const std::size_t cap = pool.workers();  // pool threads + caller
  std::atomic<int> calls{0};
  pool.run_workers(100, [&](std::size_t w) {
    EXPECT_LT(w, cap);
    calls++;
  });
  EXPECT_EQ(calls.load(), static_cast<int>(cap));
  // And n = 0 still runs one body (the caller participates).
  calls = 0;
  pool.run_workers(0, [&](std::size_t) { calls++; });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, RunWorkersPropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.run_workers(3,
                                [](std::size_t w) {
                                  if (w == 1) throw Error("worker boom");
                                }),
               Error);
  // The pool survives for the next round.
  std::atomic<int> calls{0};
  pool.run_workers(3, [&](std::size_t) { calls++; });
  EXPECT_EQ(calls.load(), 3);
}

TEST(MpmcQueue, PushPopRespectsCapacity) {
  BoundedMpmcQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.empty());
  int v = -1;
  EXPECT_FALSE(q.try_pop(v));
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));  // full
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 1);  // FIFO
  EXPECT_TRUE(q.try_push(4));
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 2);
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 4);
  EXPECT_TRUE(q.empty());
}

TEST(MpmcQueue, DeliversEverythingExactlyOnceUnderContention) {
  const int kItems = 20000;
  BoundedMpmcQueue<int> q(64);
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s = 0;
  std::atomic<int> produced{0};
  std::atomic<int> producers_done{0};
  const int kProducers = 2, kConsumers = 2;

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&] {
      for (;;) {
        int i = produced.fetch_add(1);
        if (i >= kItems) break;
        while (!q.try_push(i)) std::this_thread::yield();
      }
      producers_done.fetch_add(1);
    });
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&] {
      for (;;) {
        int v;
        if (q.try_pop(v)) {
          seen[v]++;
          continue;
        }
        if (producers_done.load() == kProducers && q.empty()) break;
        std::this_thread::yield();
      }
    });
  for (auto& t : threads) t.join();
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(MpmcQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedMpmcQueue<int> q(0), Error);
}

TEST(WorkQueue, DrainsExactlyOnceUnderContention) {
  simt::WorkQueue queue(0, 10000);
  std::vector<std::atomic<int>> seen(10000);
  for (auto& s : seen) s = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (;;) {
        std::size_t i = queue.fetch();
        if (i == simt::WorkQueue::npos) break;
        seen[i]++;
      }
    });
  for (auto& th : threads) th.join();
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy", "2"});
  std::string s = t.str();
  EXPECT_NE(s.find("a     long-header"), std::string::npos);
  EXPECT_NE(s.find("yyyy"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.5), "50.0%");
}

TEST(Aligned, VectorDataIsCacheLineAligned) {
  aligned_vector<std::uint8_t> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kSimdAlign, 0u);
  aligned_vector<std::int16_t> w(33);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % kSimdAlign, 0u);
}

}  // namespace
