// Glocal alignment mode (wing-retracted entry/exit through deletes).
#include <gtest/gtest.h>

#include <cmath>

#include "bio/synthetic.hpp"
#include "cpu/generic.hpp"
#include "cpu/trace.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"
#include "profile/msv_profile.hpp"
#include "util/error.hpp"

namespace {

using namespace finehmm;
using hmm::AlignMode;

struct GlocalFixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile local;
  hmm::SearchProfile glocal;
  explicit GlocalFixture(int M, std::uint64_t seed = 4)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          return hmm::generate_hmm(spec);
        }()),
        local(model, AlignMode::kLocalMultihit, 300),
        glocal(model, AlignMode::kGlocalMultihit, 300) {}
};

TEST(Glocal, EntryDistributionIsNormalized) {
  GlocalFixture fx(50);
  // Sum over k of P(B -> M_k) plus the all-delete mass must be <= 1 and
  // close to 1 (the all-delete path is vanishingly small).
  double total = 0.0;
  for (int k = 0; k < 50; ++k)
    total += std::exp(fx.glocal.tsc(k, hmm::kPTBM));
  EXPECT_GT(total, 0.95);
  EXPECT_LE(total, 1.0 + 1e-4);
}

TEST(Glocal, ExitScoresAreProperProbabilities) {
  GlocalFixture fx(50);
  EXPECT_FLOAT_EQ(fx.glocal.esc(50), 0.0f);  // M_M -> E is certain
  for (int k = 1; k < 50; ++k) {
    EXPECT_LE(fx.glocal.esc(k), 0.0f) << "k=" << k;
    // Exit from deep inside the model requires a long delete chain.
    if (k < 40) {
      EXPECT_LT(fx.glocal.esc(k), fx.glocal.esc(k + 5));
    }
  }
  // Local mode: free exit everywhere.
  for (int k = 1; k <= 50; ++k) EXPECT_FLOAT_EQ(fx.local.esc(k), 0.0f);
}

TEST(Glocal, ForwardEqualsBackward) {
  GlocalFixture fx(40);
  Pcg32 rng(9);
  for (int rep = 0; rep < 3; ++rep) {
    std::size_t L = 30 + rng.below(120);
    auto seq = bio::random_sequence(L, rng);
    float fwd = cpu::generic_forward(fx.glocal, seq.codes.data(), L, true);
    float bwd = cpu::generic_backward(fx.glocal, seq.codes.data(), L, true);
    EXPECT_NEAR(fwd, bwd, 2e-3f);
  }
}

TEST(Glocal, FullLengthHomologsScoreSimilarlyInBothModes) {
  GlocalFixture fx(60);
  Pcg32 rng(21);
  hmm::SampleOptions opts;
  opts.fragment_prob = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    auto seq = hmm::sample_homolog(fx.model, rng, opts);
    float lv = cpu::generic_viterbi(fx.local, seq.codes.data(), seq.length());
    float gv =
        cpu::generic_viterbi(fx.glocal, seq.codes.data(), seq.length());
    // A full-length homolog pays the local entry (~log 2/(M(M+1))) but no
    // glocal penalty; scores should be within a few nats.
    EXPECT_NEAR(lv, gv, 10.0f);
  }
}

TEST(Glocal, FragmentsPayTheWingPenalty) {
  // The local -> glocal score drop measures the wing cost a hit pays.
  // Full-length homologs pay almost nothing; half-model fragments must be
  // charged the delete chain covering the unmatched half.
  GlocalFixture fx(80);
  Pcg32 rng(23);
  hmm::SampleOptions opts;
  opts.mean_flank = 1e-9;

  auto penalty = [&](const bio::Sequence& s) {
    return cpu::generic_viterbi(fx.local, s.codes.data(), s.length()) -
           cpu::generic_viterbi(fx.glocal, s.codes.data(), s.length());
  };

  opts.fragment_prob = 0.0;
  double full_penalty = 0.0;
  for (int rep = 0; rep < 4; ++rep)
    full_penalty += penalty(hmm::sample_homolog(fx.model, rng, opts));
  full_penalty /= 4.0;

  opts.fragment_prob = 1.0;
  double frag_penalty = 0.0;
  int n = 0;
  for (int rep = 0; rep < 20 && n < 4; ++rep) {
    auto frag = hmm::sample_homolog(fx.model, rng, opts);
    if (frag.length() > 50) continue;  // want clear fragments
    frag_penalty += penalty(frag);
    ++n;
  }
  if (n == 0) GTEST_SKIP() << "sampler produced no short fragments";
  frag_penalty /= n;

  EXPECT_GT(frag_penalty, full_penalty + 5.0)
      << "fragments must pay for the unmatched model span";
}

TEST(Glocal, TraceCoversTheWholeModel) {
  GlocalFixture fx(40);
  Pcg32 rng(25);
  hmm::SampleOptions opts;
  opts.fragment_prob = 0.0;
  auto seq = hmm::sample_homolog(fx.model, rng, opts);
  auto trace = cpu::viterbi_trace(fx.glocal, seq.codes.data(), seq.length());
  float recomputed =
      cpu::trace_score(trace, fx.glocal, seq.codes.data(), seq.length());
  EXPECT_NEAR(recomputed, trace.score, 1e-3f);
  // In glocal mode the alignment must span essentially the whole model
  // (entry/exit wings are implicit delete paths, so a couple of terminal
  // positions may be absorbed into them).
  int k_min = 1000, k_max = 0;
  for (const auto& s : trace.steps)
    if (s.state == cpu::TraceState::kM || s.state == cpu::TraceState::kD) {
      k_min = std::min(k_min, s.k);
      k_max = std::max(k_max, s.k);
    }
  EXPECT_LE(k_min, 3);
  EXPECT_GE(k_max, 38);
}

TEST(Glocal, VectorizedProfilesRejectGlocalMode) {
  GlocalFixture fx(20);
  EXPECT_THROW(profile::MsvProfile msv(fx.glocal), Error);
}

}  // namespace
