// Checkpointed posterior decoding vs the full-matrix reference.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "cpu/checkpoint.hpp"
#include "cpu/posterior.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"

namespace {

using namespace finehmm;

struct CkptFixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  explicit CkptFixture(int M)
      : model(hmm::paper_model(M)),
        prof(model, hmm::AlignMode::kLocalMultihit, 300) {}
};

class Checkpointing : public ::testing::TestWithParam<int> {};

TEST_P(Checkpointing, MatchesFullMatrixOccupancy) {
  CkptFixture fx(40);
  Pcg32 rng(GetParam());
  auto seq = rng.uniform() < 0.5 ? hmm::sample_homolog(fx.model, rng)
                                 : bio::random_sequence(120, rng);
  auto full = cpu::posterior_matrices(fx.prof, seq.codes.data(),
                                      seq.length());
  auto full_mocc = cpu::model_occupancy(full);
  for (std::size_t blk : {0u, 1u, 3u, 16u, 4096u}) {
    auto ck = cpu::model_occupancy_checkpointed(fx.prof, seq.codes.data(),
                                                seq.length(), blk);
    EXPECT_NEAR(ck.total, full.total, 1e-3f) << "block " << blk;
    ASSERT_EQ(ck.mocc.size(), full_mocc.size());
    for (std::size_t i = 0; i < full_mocc.size(); ++i)
      EXPECT_NEAR(ck.mocc[i], full_mocc[i], 1e-4f)
          << "block " << blk << " row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Checkpointing, ::testing::Values(1, 2, 3));

TEST(Checkpointing, DefaultBlockIsSqrtL) {
  CkptFixture fx(20);
  Pcg32 rng(9);
  auto seq = bio::random_sequence(400, rng);
  auto ck = cpu::model_occupancy_checkpointed(fx.prof, seq.codes.data(),
                                              seq.length());
  EXPECT_EQ(ck.block, 20u);
}

TEST(Checkpointing, LongTargetStaysAccurate) {
  CkptFixture fx(30);
  Pcg32 rng(11);
  bio::Sequence seq;
  for (int i = 0; i < 8; ++i) {
    auto h = hmm::sample_homolog(fx.model, rng);
    seq.codes.insert(seq.codes.end(), h.codes.begin(), h.codes.end());
  }
  auto full = cpu::posterior_matrices(fx.prof, seq.codes.data(),
                                      seq.length());
  auto full_mocc = cpu::model_occupancy(full);
  auto ck = cpu::model_occupancy_checkpointed(fx.prof, seq.codes.data(),
                                              seq.length());
  double max_err = 0.0;
  for (std::size_t i = 0; i < full_mocc.size(); ++i)
    max_err = std::max(max_err,
                       std::abs(double(ck.mocc[i]) - full_mocc[i]));
  EXPECT_LT(max_err, 1e-4);
}

}  // namespace
