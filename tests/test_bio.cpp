// Alphabet, sequences, FASTA, residue packing, synthetic databases.
#include <gtest/gtest.h>

#include <sstream>

#include "bio/fasta.hpp"
#include "bio/packing.hpp"
#include "bio/synthetic.hpp"
#include "util/error.hpp"

namespace {

using namespace finehmm;
using namespace finehmm::bio;

TEST(Alphabet, RoundTripsEveryCode) {
  for (int c = 0; c < kKp; ++c) {
    char ch = symbol(static_cast<std::uint8_t>(c));
    EXPECT_EQ(digitize(ch), c) << "code " << c << " char " << ch;
  }
}

TEST(Alphabet, LowercaseDigitizesLikeUppercase) {
  EXPECT_EQ(digitize('a'), digitize('A'));
  EXPECT_EQ(digitize('w'), digitize('W'));
  EXPECT_EQ(digitize('x'), digitize('X'));
}

TEST(Alphabet, UnknownCharacterThrows) {
  EXPECT_THROW(digitize('0'), Error);
  EXPECT_THROW(digitize('?'), Error);
}

TEST(Alphabet, DegenerateExpansions) {
  EXPECT_EQ(expansion(kCodeB).size(), 2u);  // D or N
  EXPECT_EQ(expansion(kCodeJ).size(), 2u);  // I or L
  EXPECT_EQ(expansion(kCodeZ).size(), 2u);  // E or Q
  EXPECT_EQ(expansion(kCodeX).size(), 20u);
  EXPECT_EQ(expansion(5).size(), 1u);
  EXPECT_EQ(expansion(5)[0], 5);
}

TEST(Alphabet, BackgroundFrequenciesSumToOne) {
  double total = 0.0;
  for (float f : background_frequencies()) total += f;
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(Packing, RoundTripsAllLengths) {
  Pcg32 rng(1);
  for (std::size_t len : {1u, 5u, 6u, 7u, 11u, 12u, 100u, 601u}) {
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes) c = static_cast<std::uint8_t>(rng.below(kKp));
    auto words = pack_residues(codes);
    EXPECT_EQ(words.size(), (len + 5) / 6);
    auto back = unpack_residues(words.data(), len);
    EXPECT_EQ(back, codes);
  }
}

TEST(Packing, PadsTailWithFlag31) {
  std::vector<std::uint8_t> codes = {1, 2, 3, 4};  // 4 residues, 2 pads
  auto words = pack_residues(codes);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(packed_residue(words.data(), 4), kPadCode);
  EXPECT_EQ(packed_residue(words.data(), 5), kPadCode);
}

TEST(Packing, SixResiduesPerWord) {
  EXPECT_EQ(kResiduesPerWord, 6u);
  std::vector<std::uint8_t> codes(6, 28);  // max code value
  auto words = pack_residues(codes);
  ASSERT_EQ(words.size(), 1u);
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(packed_residue(words.data(), i), 28);
}

TEST(PackedDatabase, MatchesSourceSequences) {
  Pcg32 rng(7);
  SequenceDatabase db;
  for (int i = 0; i < 20; ++i) {
    // Two-step concat sidesteps GCC 12's -Wrestrict false positive on
    // `"literal" + std::string&&` (GCC bug 105651).
    std::string name = "s";
    name += std::to_string(i);
    db.add(random_sequence(1 + rng.below(50), rng, name));
  }
  PackedDatabase packed(db);
  ASSERT_EQ(packed.size(), db.size());
  EXPECT_EQ(packed.total_residues(), db.total_residues());
  for (std::size_t s = 0; s < db.size(); ++s) {
    ASSERT_EQ(packed.length(s), db[s].length());
    for (std::size_t i = 0; i < db[s].length(); ++i)
      EXPECT_EQ(packed.residue(s, i), db[s].codes[i]);
  }
}

TEST(Fasta, RoundTrip) {
  SequenceDatabase db;
  db.add(Sequence::from_text("seq1", "ACDEFGHIKLMNPQRSTVWY", "a protein"));
  db.add(Sequence::from_text("seq2", "AAAA"));
  std::ostringstream out;
  write_fasta(out, db, 7);
  std::istringstream in(out.str());
  auto back = read_fasta(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "seq1");
  EXPECT_EQ(back[0].description, "a protein");
  EXPECT_EQ(back[0].text(), "ACDEFGHIKLMNPQRSTVWY");
  EXPECT_EQ(back[1].text(), "AAAA");
}

TEST(Fasta, HandlesMultilineAndBlankLines) {
  std::istringstream in(">x desc here\nACDE\n\nFGHI\n>y\nKL\n");
  auto db = read_fasta(in);
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db[0].text(), "ACDEFGHI");
  EXPECT_EQ(db[0].description, "desc here");
  EXPECT_EQ(db[1].text(), "KL");
}

TEST(Fasta, ResidueBeforeHeaderThrows) {
  std::istringstream in("ACDE\n>x\nAC\n");
  EXPECT_THROW(read_fasta(in), ParseError);
}

TEST(Synthetic, PresetsMatchPaperShapes) {
  auto sp = SyntheticDbSpec::swissprot_like(0.001);
  auto env = SyntheticDbSpec::envnr_like(0.0001);
  EXPECT_NEAR(sp.expected_mean_length(), 373.7, 1.0);
  EXPECT_NEAR(env.expected_mean_length(), 197.0, 1.0);
  EXPECT_GT(env.n_sequences, sp.n_sequences);
}

TEST(Synthetic, GeneratedDatabaseHasExpectedMeanLength) {
  auto spec = SyntheticDbSpec::swissprot_like(0.002);  // ~919 sequences
  auto db = generate_database(spec);
  EXPECT_EQ(db.size(), spec.n_sequences);
  EXPECT_NEAR(db.mean_length(), 373.7, 40.0);
}

TEST(Synthetic, DeterministicAcrossRuns) {
  auto spec = SyntheticDbSpec::envnr_like(0.00002);
  auto a = generate_database(spec);
  auto b = generate_database(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].codes, b[i].codes);
}

TEST(Database, ReplaceKeepsStatsConsistent) {
  Pcg32 rng(3);
  SequenceDatabase db;
  db.add(random_sequence(10, rng));
  db.add(random_sequence(50, rng));
  db.replace(1, random_sequence(20, rng));
  EXPECT_EQ(db.total_residues(), 30u);
  EXPECT_EQ(db.max_length(), 20u);
}

}  // namespace
