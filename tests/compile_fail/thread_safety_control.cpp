// Positive control for tests/compile_fail/thread_safety_violation.cpp:
// the same Account shape with the locking done correctly.  This TU MUST
// compile cleanly under
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
// (the test_thread_safety_control ctest), proving the negative test
// fails because the analysis caught the violations — not because the
// include paths, the wrapper, or the flags are broken.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

class Account {
 public:
  void deposit(int v) FINEHMM_EXCLUDES(mu_) {
    finehmm::MutexLock lock(mu_);
    balance_ += v;
  }

  int audit() FINEHMM_REQUIRES(mu_) { return balance_; }
  int audit_locked() FINEHMM_EXCLUDES(mu_) {
    finehmm::MutexLock lock(mu_);
    return audit();
  }

 private:
  finehmm::Mutex mu_;
  int balance_ FINEHMM_GUARDED_BY(mu_) = 0;
};

int main() {
  Account a;
  a.deposit(1);
  return a.audit_locked();
}
