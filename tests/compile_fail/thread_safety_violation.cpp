// Negative compile test: this TU MUST FAIL to compile under
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
// (the test_thread_safety_violations ctest runs exactly that and is
// registered WILL_FAIL).  If it ever compiles on Clang, the capability
// annotations have stopped being enforced — the macros expand to
// nothing, the wrapper lost its attributes, or the warning flag was
// dropped.  tests/compile_fail/thread_safety_control.cpp is the
// positive control: the same shape with correct locking, which must
// compile, so the pair distinguishes "analysis caught the bug" from
// "the TU is broken for an unrelated reason".
//
// Never add this directory to a build target: the files are compiled
// only by the dedicated ctest entries in tests/CMakeLists.txt.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

class Account {
 public:
  // VIOLATION 1: writes the guarded balance without holding mu_.
  void deposit_unlocked(int v) { balance_ += v; }

  // VIOLATION 2: claims to need mu_ but the caller below never takes it.
  int audit() FINEHMM_REQUIRES(mu_) { return balance_; }
  int audit_caller() { return audit(); }

  // VIOLATION 3: acquires mu_ and returns without releasing it.
  void leak_lock() FINEHMM_EXCLUDES(mu_) { mu_.lock(); }

 private:
  finehmm::Mutex mu_;
  int balance_ FINEHMM_GUARDED_BY(mu_) = 0;
};

int main() {
  Account a;
  a.deposit_unlocked(1);
  return a.audit_caller();
}
