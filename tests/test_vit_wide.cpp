// Width-templated ViterbiFilter: bit-exact with the scalar reference at
// every lane count, including delete-heavy Lazy-F stress.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "cpu/vit_scalar.hpp"
#include "cpu/vit_wide.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"

namespace {

using namespace finehmm;

template <int N>
void check_width(int M, double delete_extend, std::uint64_t seed) {
  hmm::RandomHmmSpec spec;
  spec.length = M;
  spec.seed = seed;
  spec.delete_extend = delete_extend;
  spec.indel_open = delete_extend > 0.7 ? 0.1 : 0.02;
  auto model = hmm::generate_hmm(spec);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 300);
  profile::VitProfile vit(prof);
  cpu::WideVitStripes<N> stripes(vit);
  Pcg32 rng(seed + 1);
  for (int rep = 0; rep < 10; ++rep) {
    auto seq = rep % 3 == 0 ? hmm::sample_homolog(model, rng)
                            : bio::random_sequence(1 + rng.below(350), rng);
    auto ref = cpu::vit_scalar(vit, seq.codes.data(), seq.length());
    auto wide =
        cpu::vit_striped_wide<N>(vit, stripes, seq.codes.data(), seq.length());
    EXPECT_FLOAT_EQ(wide.score_nats, ref.score_nats)
        << "N=" << N << " M=" << M << " rep=" << rep;
  }
}

class WideVit : public ::testing::TestWithParam<int> {};

TEST_P(WideVit, SseWidthMatchesScalar) { check_width<8>(GetParam(), 0.5, 3); }
TEST_P(WideVit, Avx2WidthMatchesScalar) {
  check_width<16>(GetParam(), 0.5, 4);
}
TEST_P(WideVit, Avx512WidthMatchesScalar) {
  check_width<32>(GetParam(), 0.5, 5);
}
TEST_P(WideVit, DeleteHeavyLazyFAllWidths) {
  check_width<8>(GetParam(), 0.85, 6);
  check_width<16>(GetParam(), 0.85, 6);
  check_width<32>(GetParam(), 0.85, 6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WideVit,
                         ::testing::Values(1, 7, 8, 9, 31, 33, 128),
                         ::testing::PrintToStringParamName());

}  // namespace
