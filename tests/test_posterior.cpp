// Posterior decoding and domain definition.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "cpu/generic.hpp"
#include "cpu/posterior.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"

namespace {

using namespace finehmm;

struct PostFixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  explicit PostFixture(int M, std::uint64_t seed = 8)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          return hmm::generate_hmm(spec);
        }()),
        prof(model, hmm::AlignMode::kLocalMultihit, 300) {}
};

TEST(Posterior, TotalMatchesGenericForward) {
  PostFixture fx(50);
  Pcg32 rng(3);
  for (int rep = 0; rep < 5; ++rep) {
    std::size_t L = 20 + rng.below(150);
    auto seq = bio::random_sequence(L, rng);
    auto pm = cpu::posterior_matrices(fx.prof, seq.codes.data(), L);
    float ref = cpu::generic_forward(fx.prof, seq.codes.data(), L, true);
    EXPECT_NEAR(pm.total, ref, 1e-3f);
  }
}

TEST(Posterior, ForwardTimesBackwardIsConstantAcrossRows) {
  // For every row i, summing fwd*bwd over all states that "hold" the
  // parse at that point must reproduce the total probability.  We verify
  // via the emission decomposition: mocc + N/J/C loop posteriors == 1.
  PostFixture fx(40);
  Pcg32 rng(5);
  auto seq = hmm::sample_homolog(fx.model, rng);
  std::size_t L = seq.length();
  auto pm = cpu::posterior_matrices(fx.prof, seq.codes.data(), L);
  auto mocc = cpu::model_occupancy(pm);
  const auto xs = fx.prof.xsc_for(static_cast<int>(L));

  for (std::size_t i = 1; i <= L; ++i) {
    auto loop_post = [&](const std::vector<float>& f,
                         const std::vector<float>& b, float loop) {
      float v = f[i - 1] + loop + b[i];
      return std::isfinite(v) ? std::exp(v - pm.total) : 0.0f;
    };
    float flank = loop_post(pm.fwd_n, pm.bwd_n, xs.n_loop) +
                  loop_post(pm.fwd_j, pm.bwd_j, xs.j_loop) +
                  loop_post(pm.fwd_c, pm.bwd_c, xs.c_loop);
    EXPECT_NEAR(mocc[i - 1] + flank, 1.0f, 2e-2f) << "row " << i;
  }
}

TEST(Posterior, OccupancyHighInsideMotifLowOutside) {
  PostFixture fx(60);
  Pcg32 rng(11);
  // Construct: 100 random + full homolog core + 100 random.
  auto flank1 = bio::random_sequence(100, rng);
  hmm::SampleOptions opts;
  opts.fragment_prob = 0.0;
  opts.mean_flank = 1e-9;  // no extra flanks
  auto core = hmm::sample_homolog(fx.model, rng, opts);
  auto flank2 = bio::random_sequence(100, rng);
  std::vector<std::uint8_t> seq;
  seq.insert(seq.end(), flank1.codes.begin(), flank1.codes.end());
  std::size_t core_begin = seq.size();
  seq.insert(seq.end(), core.codes.begin(), core.codes.end());
  std::size_t core_end = seq.size();
  seq.insert(seq.end(), flank2.codes.begin(), flank2.codes.end());

  auto pm = cpu::posterior_matrices(fx.prof, seq.data(), seq.size());
  auto mocc = cpu::model_occupancy(pm);
  // Mean occupancy inside the core far exceeds the flanks.
  double inside = 0.0, outside = 0.0;
  for (std::size_t i = core_begin; i < core_end; ++i) inside += mocc[i];
  inside /= static_cast<double>(core_end - core_begin);
  for (std::size_t i = 0; i < 80; ++i) outside += mocc[i];
  outside /= 80.0;
  EXPECT_GT(inside, 0.85);
  EXPECT_LT(outside, 0.15);
}

TEST(Posterior, SinglePlantedMotifYieldsOneDomainAtTheRightPlace) {
  PostFixture fx(60);
  Pcg32 rng(13);
  auto flank1 = bio::random_sequence(120, rng);
  hmm::SampleOptions opts;
  opts.fragment_prob = 0.0;
  opts.mean_flank = 1e-9;
  auto core = hmm::sample_homolog(fx.model, rng, opts);
  auto flank2 = bio::random_sequence(120, rng);
  std::vector<std::uint8_t> seq;
  seq.insert(seq.end(), flank1.codes.begin(), flank1.codes.end());
  std::size_t core_begin = seq.size() + 1;  // 1-based
  seq.insert(seq.end(), core.codes.begin(), core.codes.end());
  std::size_t core_end = seq.size();
  seq.insert(seq.end(), flank2.codes.begin(), flank2.codes.end());

  auto domains = cpu::define_domains(fx.prof, seq.data(), seq.size());
  ASSERT_EQ(domains.size(), 1u);
  const auto& d = domains[0];
  EXPECT_NEAR(static_cast<double>(d.i_start),
              static_cast<double>(core_begin), 12.0);
  EXPECT_NEAR(static_cast<double>(d.i_end), static_cast<double>(core_end),
              12.0);
  EXPECT_GT(d.bits, 20.0f);
  ASSERT_FALSE(d.alignments.empty());
  EXPECT_GE(d.alignments.front().i_start, d.i_start);
  EXPECT_LE(d.alignments.back().i_end, d.i_end);
}

TEST(Posterior, TwoPlantedCopiesYieldTwoDomains) {
  PostFixture fx(50);
  Pcg32 rng(17);
  hmm::SampleOptions opts;
  opts.fragment_prob = 0.0;
  opts.mean_flank = 1e-9;
  auto copy1 = hmm::sample_homolog(fx.model, rng, opts);
  auto copy2 = hmm::sample_homolog(fx.model, rng, opts);
  auto gap = bio::random_sequence(150, rng);
  std::vector<std::uint8_t> seq;
  auto flank = bio::random_sequence(60, rng);
  seq.insert(seq.end(), flank.codes.begin(), flank.codes.end());
  seq.insert(seq.end(), copy1.codes.begin(), copy1.codes.end());
  seq.insert(seq.end(), gap.codes.begin(), gap.codes.end());
  seq.insert(seq.end(), copy2.codes.begin(), copy2.codes.end());
  seq.insert(seq.end(), flank.codes.begin(), flank.codes.end());

  auto domains = cpu::define_domains(fx.prof, seq.data(), seq.size());
  ASSERT_EQ(domains.size(), 2u);
  EXPECT_LT(domains[0].i_end, domains[1].i_start);
  for (const auto& d : domains) EXPECT_GT(d.bits, 15.0f);
}

TEST(Posterior, RandomSequenceDomainsAreWeak) {
  // Null sequences may occasionally seed an envelope (HMMER's do too);
  // what matters is that such envelopes carry no significant score and
  // would be discarded by the E-value threshold downstream.
  PostFixture fx(80);
  Pcg32 rng(19);
  int total_domains = 0;
  for (int rep = 0; rep < 5; ++rep) {
    auto seq = bio::random_sequence(300, rng);
    auto domains =
        cpu::define_domains(fx.prof, seq.codes.data(), seq.length());
    total_domains += static_cast<int>(domains.size());
    for (const auto& d : domains)
      EXPECT_LT(d.bits, 15.0f) << "null domain must be insignificant";
  }
  EXPECT_LE(total_domains, 6);
}

}  // namespace
