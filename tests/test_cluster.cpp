// Sharded-cluster tests: shard planning, manifests, the z_override
// bit-identity contract, the scatter-gather merge, and ClusterClient /
// ClusterCoordinator failure semantics over in-process loopback shards
// (docs/cluster.md).
//
// The load-bearing claims proven here:
//   (a) shard workers scoring with z_override = cluster-total Z produce
//       E-values BITWISE equal to the unsharded scan (operator==, no
//       tolerance);
//   (b) the coordinator's merged result — hits, order, E-values, stage
//       counters — is bit-identical to a single unsharded daemon's;
//   (c) shard death mid-sweep degrades the merge (flagged) instead of
//       failing it, and the shard recovers on the next request;
//   (d) one slow shard cannot hold a request past its deadline;
//   (e) all shards overloaded => the coordinator sheds the request.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bio/sequence.hpp"
#include "cluster/cluster_client.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/merge.hpp"
#include "cluster/shard_map.hpp"
#include "hmm/binary_io.hpp"
#include "hmm/generator.hpp"
#include "hmm/model_db.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/workload.hpp"
#include "server/client.hpp"
#include "server/loopback.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "stats/distributions.hpp"

namespace {

using namespace finehmm;
using namespace finehmm::cluster;
using server::BlockingClient;
using server::ClientStatus;
using server::decode_scan_request;
using server::decode_scan_result;
using server::decode_search_request;
using server::decode_search_result;
using server::encode_scan_request;
using server::encode_scan_result;
using server::encode_search_request;
using server::encode_search_result;
using server::LoopbackHub;
using server::SearchServer;
using server::ServerConfig;

// ----------------------------------------------------- shard planning

TEST(ShardMap, PlanTilesTheDatabaseAndBalancesResidues) {
  std::vector<std::uint32_t> lengths;
  for (std::size_t i = 0; i < 100; ++i)
    lengths.push_back(static_cast<std::uint32_t>(20 + (i * 37) % 400));
  std::uint64_t total = 0;
  for (std::uint32_t l : lengths) total += l;

  for (std::size_t n : {1u, 2u, 3u, 4u, 7u}) {
    const auto ranges = plan_shard_ranges(lengths, n);
    ASSERT_EQ(ranges.size(), n);
    std::size_t expect_begin = 0;
    std::uint64_t max_share = 0;
    for (const auto& [begin, end] : ranges) {
      EXPECT_EQ(begin, expect_begin);
      EXPECT_GT(end, begin) << "every shard must be non-empty";
      std::uint64_t share = 0;
      for (std::size_t i = begin; i < end; ++i) share += lengths[i];
      max_share = std::max(max_share, share);
      expect_begin = end;
    }
    EXPECT_EQ(expect_begin, lengths.size());
    // Balanced within one sequence of the ideal share: the cut overshoots
    // its target by at most the last sequence added.
    EXPECT_LE(max_share, total / n + 400 + 1) << n;
  }
}

TEST(ShardMap, PlanRejectsMoreShardsThanSequences) {
  EXPECT_THROW(plan_shard_ranges({10, 20}, 3), Error);
  EXPECT_THROW(plan_shard_ranges({}, 1), Error);
}

TEST(ShardMap, LengthBucketEdges) {
  EXPECT_EQ(length_bucket(0), 0u);
  EXPECT_EQ(length_bucket(64), 0u);
  EXPECT_EQ(length_bucket(65), 1u);
  EXPECT_EQ(length_bucket(4096), kLengthBuckets - 2);
  EXPECT_EQ(length_bucket(4097), kLengthBuckets - 1);
  EXPECT_EQ(length_bucket(1u << 20), kLengthBuckets - 1);
}

// --------------------------------------------------------- manifests

ShardManifest small_manifest() {
  ShardManifest m;
  m.source = "db.fsqdb";
  m.total_sequences = 5;
  m.total_residues = 500;
  ShardInfo a;
  a.path = "shard.0.fsqdb";
  a.seq_base = 0;
  a.sequences = 3;
  a.residues = 290;
  a.length_buckets.assign(kLengthBuckets, 0);
  a.length_buckets[1] = 3;
  ShardInfo b;
  b.path = "shard.1.fsqdb";
  b.seq_base = 3;
  b.sequences = 2;
  b.residues = 210;
  b.length_buckets.assign(kLengthBuckets, 0);
  b.length_buckets[2] = 2;
  m.shards = {a, b};
  return m;
}

TEST(ShardManifestIo, RoundTrip) {
  const ShardManifest m = small_manifest();
  const ShardManifest back = parse_manifest(write_manifest(m));
  EXPECT_EQ(back.source, m.source);
  EXPECT_EQ(back.total_sequences, m.total_sequences);
  EXPECT_EQ(back.total_residues, m.total_residues);
  ASSERT_EQ(back.shards.size(), m.shards.size());
  for (std::size_t i = 0; i < m.shards.size(); ++i) {
    EXPECT_EQ(back.shards[i].path, m.shards[i].path);
    EXPECT_EQ(back.shards[i].seq_base, m.shards[i].seq_base);
    EXPECT_EQ(back.shards[i].sequences, m.shards[i].sequences);
    EXPECT_EQ(back.shards[i].residues, m.shards[i].residues);
    EXPECT_EQ(back.shards[i].length_buckets, m.shards[i].length_buckets);
  }
}

TEST(ShardManifestIo, RejectsMalformedManifests) {
  // Wrong schema tag.
  ShardManifest m = small_manifest();
  std::string json = write_manifest(m);
  std::string bad = json;
  bad.replace(bad.find("shard_manifest.v1"), 17, "shard_manifest.v9");
  EXPECT_THROW(parse_manifest(bad), Error);

  // Shard ranges that do not tile [0, total).
  m = small_manifest();
  m.shards[1].seq_base = 4;
  EXPECT_THROW(parse_manifest(write_manifest(m)), Error);

  // Totals that do not add up.
  m = small_manifest();
  m.total_residues = 999;
  EXPECT_THROW(parse_manifest(write_manifest(m)), Error);

  // Trailing bytes, truncation, floats: the parser trusts nothing.
  EXPECT_THROW(parse_manifest(json + "x"), Error);
  EXPECT_THROW(parse_manifest(json.substr(0, json.size() / 2)), Error);
  EXPECT_THROW(parse_manifest("{\"schema\": 1.5}"), Error);
  EXPECT_THROW(parse_manifest(""), Error);
}

// ------------------------------------------------ protocol extensions

TEST(ClusterProtocol, PingInfoRoundTripAndLegacyDetection) {
  server::PingInfo info;
  info.role = server::NodeRole::kShard;
  info.shard_id = 7;
  const server::PingInfo back = server::decode_ping(server::encode_ping(info));
  EXPECT_EQ(back.wire_revision, server::kWireRevision);
  EXPECT_EQ(back.role, server::NodeRole::kShard);
  EXPECT_EQ(back.shard_id, 7u);

  // The pre-cluster protocol pinged with an empty payload: that decodes
  // as a legacy revision-1 standalone peer, never as a parse error.
  const server::PingInfo legacy = server::decode_ping({});
  EXPECT_EQ(legacy.wire_revision, 1u);
  EXPECT_EQ(legacy.role, server::NodeRole::kStandalone);

  // Bounds and validity: truncated payloads and unknown roles reject.
  std::vector<std::uint8_t> bytes = server::encode_ping(info);
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> head(bytes.begin(), bytes.begin() + cut);
    EXPECT_THROW(server::decode_ping(head), server::ProtocolError) << cut;
  }
  bytes[2] = 0x7F;  // role byte: no such NodeRole
  EXPECT_THROW(server::decode_ping(bytes), server::ProtocolError);
}

TEST(ClusterProtocol, ZOverrideRoundTripsAndZeroLeavesBytesLegacy) {
  server::SearchRequest req;
  req.db_id = 3;
  req.evalue = 0.5;
  req.deadline_ms = 250;
  req.model_name = "m";
  req.model_kind = server::ModelRefKind::kPressed;

  const std::vector<std::uint8_t> legacy = encode_search_request(req);
  req.z_override = 123456789ull;
  const std::vector<std::uint8_t> with_z = encode_search_request(req);
  // The override costs exactly its 8 bytes (the flags byte was always
  // there); a zero override re-encodes to the revision-1 byte stream.
  EXPECT_EQ(with_z.size(), legacy.size() + 8);
  const server::SearchRequest back = decode_search_request(with_z);
  EXPECT_EQ(back.z_override, 123456789ull);
  EXPECT_EQ(decode_search_request(legacy).z_override, 0u);

  // Truncating the optional tail must throw, never misparse.
  for (std::size_t cut = legacy.size(); cut < with_z.size(); ++cut) {
    const std::vector<std::uint8_t> head(with_z.begin(),
                                         with_z.begin() + cut);
    EXPECT_THROW(decode_search_request(head), server::ProtocolError) << cut;
  }

  server::ScanRequest scan;
  scan.db_id = 1;
  scan.z_override = 42;
  const server::ScanRequest scan_back =
      decode_scan_request(encode_scan_request(scan));
  EXPECT_EQ(scan_back.z_override, 42u);
}

TEST(ClusterProtocol, ResultFlagsRoundTripAndCleanResultsStayLegacy) {
  server::SearchResultWire res;
  res.db_sequences = 10;
  pipeline::Hit h;
  h.seq_index = 4;
  h.name = "s4";
  h.pvalue = 1e-6;
  h.evalue = 1e-5;
  res.hits.push_back(h);

  const std::vector<std::uint8_t> clean = encode_search_result(res);
  res.flags = server::kResultDegraded;
  const std::vector<std::uint8_t> flagged = encode_search_result(res);
  EXPECT_EQ(flagged.size(), clean.size() + 1);
  EXPECT_EQ(decode_search_result(clean).flags, 0);
  EXPECT_EQ(decode_search_result(flagged).flags, server::kResultDegraded);

  server::ScanResultWire sres;
  sres.flags = server::kResultDegraded;
  EXPECT_EQ(decode_scan_result(encode_scan_result(sres)).flags,
            server::kResultDegraded);
}

// --------------------------------------- z_override bitwise equality

struct ClusterWorkload {
  hmm::Plan7Hmm model;
  bio::SequenceDatabase db;

  explicit ClusterWorkload(int M = 48, std::size_t n = 120)
      : model(hmm::paper_model(M)) {
    pipeline::WorkloadSpec spec;
    spec.db.name = "clusterdb";
    spec.db.n_sequences = n;
    spec.db.log_length_mu = 4.4;
    spec.db.log_length_sigma = 0.4;
    spec.db.seed = 7;
    spec.homolog_fraction = 0.08;
    db = pipeline::make_workload(model, spec);
  }

  std::vector<std::uint32_t> lengths() const {
    std::vector<std::uint32_t> out;
    out.reserve(db.size());
    for (const bio::Sequence& s : db)
      out.push_back(static_cast<std::uint32_t>(s.length()));
    return out;
  }

  bio::SequenceDatabase slice(std::size_t begin, std::size_t end) const {
    bio::SequenceDatabase out;
    out.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) out.add(db[i]);
    return out;
  }

  pipeline::SearchResult reference(double evalue = 10.0) const {
    pipeline::Thresholds thr;
    thr.report_evalue = evalue;
    return pipeline::HmmSearch(model, thr).run_cpu(db);
  }

  ShardManifest manifest(
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges) const {
    ShardManifest m;
    m.source = "clusterdb";
    m.total_sequences = db.size();
    m.total_residues = db.total_residues();
    for (const auto& [begin, end] : ranges) {
      ShardInfo info;
      info.path = "mem";
      info.seq_base = begin;
      info.sequences = end - begin;
      info.length_buckets.assign(kLengthBuckets, 0);
      for (std::size_t i = begin; i < end; ++i) {
        info.residues += db[i].length();
        ++info.length_buckets[length_bucket(db[i].length())];
      }
      m.shards.push_back(std::move(info));
    }
    return m;
  }
};

TEST(ZOverride, ShardScoresAreBitwiseEqualToUnshardedScan) {
  const ClusterWorkload w;
  const pipeline::SearchResult whole = w.reference();
  ASSERT_FALSE(whole.hits.empty()) << "vacuous workload";

  const auto ranges = plan_shard_ranges(w.lengths(), 2);
  std::vector<pipeline::Hit> merged;
  pipeline::Thresholds thr;
  thr.z_override = w.db.size();  // cluster-total Z
  const pipeline::HmmSearch search(w.model, thr);
  for (const auto& [begin, end] : ranges) {
    const bio::SequenceDatabase part = w.slice(begin, end);
    pipeline::SearchResult r = search.run_cpu(part);
    for (pipeline::Hit& h : r.hits) {
      h.seq_index += begin;
      merged.push_back(std::move(h));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const pipeline::Hit& a, const pipeline::Hit& b) {
              return a.evalue != b.evalue ? a.evalue < b.evalue
                                          : a.seq_index < b.seq_index;
            });

  ASSERT_EQ(merged.size(), whole.hits.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    // operator== throughout: the claim is bitwise, not approximate.
    EXPECT_EQ(merged[i].seq_index, whole.hits[i].seq_index) << i;
    EXPECT_EQ(merged[i].pvalue, whole.hits[i].pvalue) << i;
    EXPECT_EQ(merged[i].evalue, whole.hits[i].evalue) << i;
    EXPECT_EQ(merged[i].fwd_bits, whole.hits[i].fwd_bits) << i;
  }
}

TEST(ZOverride, EvalueOverloadIsTheSameSingleMultiply) {
  const double p = 3.7e-9;
  EXPECT_EQ(stats::evalue(p, 0, 123456), stats::evalue(p, 123456));
  EXPECT_EQ(stats::evalue(p, 999, 0), stats::evalue(p, 999));
}

// --------------------------------------------------------- pure merge

TEST(Merge, ReassemblesTheUnshardedResultBitForBit) {
  const ClusterWorkload w;
  const pipeline::SearchResult whole = w.reference();
  const auto ranges = plan_shard_ranges(w.lengths(), 3);
  const ShardManifest m = w.manifest(ranges);

  pipeline::Thresholds thr;
  thr.z_override = w.db.size();
  const pipeline::HmmSearch search(w.model, thr);
  std::vector<server::SearchResultWire> parts;
  std::vector<std::size_t> indices;
  for (std::size_t k = 0; k < ranges.size(); ++k) {
    const pipeline::SearchResult r =
        search.run_cpu(w.slice(ranges[k].first, ranges[k].second));
    server::SearchResultWire wire;
    wire.ssv = r.ssv;
    wire.msv = r.msv;
    wire.vit = r.vit;
    wire.fwd = r.fwd;
    wire.bwd = r.bwd;
    wire.hits = r.hits;
    parts.push_back(std::move(wire));
    indices.push_back(k);
  }
  // Shuffle arrival order: the merge must not care.
  std::swap(parts[0], parts[2]);
  std::swap(indices[0], indices[2]);

  const server::SearchResultWire out =
      merge_search_results(parts, indices, m, 10.0);
  EXPECT_EQ(out.flags, 0);
  EXPECT_EQ(out.db_sequences, w.db.size());
  EXPECT_EQ(out.msv.n_in, whole.msv.n_in);
  EXPECT_EQ(out.msv.n_passed, whole.msv.n_passed);
  EXPECT_EQ(out.vit.n_passed, whole.vit.n_passed);
  EXPECT_EQ(out.fwd.n_passed, whole.fwd.n_passed);
  ASSERT_EQ(out.hits.size(), whole.hits.size());
  for (std::size_t i = 0; i < out.hits.size(); ++i) {
    EXPECT_EQ(out.hits[i].seq_index, whole.hits[i].seq_index) << i;
    EXPECT_EQ(out.hits[i].name, whole.hits[i].name) << i;
    EXPECT_EQ(out.hits[i].evalue, whole.hits[i].evalue) << i;
  }

  // A missing shard degrades the merge and flags it.
  const server::SearchResultWire partial = merge_search_results(
      {parts[0]}, {indices[0]}, m, 10.0);
  EXPECT_EQ(partial.flags, server::kResultDegraded);
  EXPECT_LE(partial.hits.size(), whole.hits.size());
}

// ----------------------------------------- loopback cluster fixture

/// N shard SearchServers, each owning its manifest range of the
/// workload over its own LoopbackHub, plus the ClusterClient wired to
/// them.  `connectable[i]` simulates shard death: when false, the
/// cluster's ConnectFn refuses that shard.
struct ClusterFixture {
  ClusterWorkload w;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ShardManifest m;
  std::vector<std::unique_ptr<SearchServer>> shards;
  std::vector<std::unique_ptr<LoopbackHub>> hubs;
  std::vector<std::unique_ptr<server::Listener>> listeners;
  std::vector<std::thread> serve_threads;
  std::shared_ptr<std::vector<bool>> connectable;
  std::unique_ptr<ClusterClient> cli;

  explicit ClusterFixture(std::size_t n_shards = 2, ServerConfig cfg = {},
                          const std::string& model_lib = {}) {
    ranges = plan_shard_ranges(w.lengths(), n_shards);
    m = w.manifest(ranges);
    cfg.scan_threads = 2;
    cfg.role = server::NodeRole::kShard;
    connectable = std::make_shared<std::vector<bool>>(n_shards, true);
    for (std::size_t k = 0; k < n_shards; ++k) {
      cfg.shard_id = static_cast<std::uint32_t>(k);
      auto srv = std::make_unique<SearchServer>(cfg);
      EXPECT_EQ(srv->add_database(w.slice(ranges[k].first, ranges[k].second)),
                0u);
      if (!model_lib.empty()) {
        EXPECT_GT(srv->add_model_library(model_lib), 0u);
      }
      auto hub = std::make_unique<LoopbackHub>();
      listeners.push_back(hub->listener());
      serve_threads.emplace_back(
          [s = srv.get(), l = listeners.back().get()] { s->serve(*l); });
      shards.push_back(std::move(srv));
      hubs.push_back(std::move(hub));
    }
    ClusterConfig ccfg;
    ccfg.manifest = m;
    ccfg.connect_retries = 1;
    ccfg.retry_backoff_ms = 1;
    ccfg.require_shard_role = true;
    cli = std::make_unique<ClusterClient>(
        ccfg, [this](std::size_t shard) -> std::unique_ptr<server::Connection> {
          if (!(*connectable)[shard]) return nullptr;
          return hubs[shard]->connect();
        });
  }

  ~ClusterFixture() {
    for (auto& s : shards) s->begin_drain();
    for (std::thread& t : serve_threads)
      if (t.joinable()) t.join();
  }

  server::SearchRequest search_request(double evalue = 10.0,
                                       std::uint32_t deadline_ms = 0) const {
    server::SearchRequest req;
    req.evalue = evalue;
    req.deadline_ms = deadline_ms;
    std::ostringstream blob;
    hmm::write_hmm_binary(blob, w.model, nullptr);
    const std::string bytes = blob.str();
    req.model_blob.assign(bytes.begin(), bytes.end());
    return req;
  }
};

void expect_cluster_matches_reference(const ClusterSearchResult& rr,
                                      const pipeline::SearchResult& ref,
                                      const ClusterWorkload& w) {
  ASSERT_EQ(rr.status, ClientStatus::kOk);
  EXPECT_FALSE(rr.degraded);
  EXPECT_EQ(rr.result.flags, 0);
  EXPECT_EQ(rr.result.db_sequences, w.db.size());
  EXPECT_EQ(rr.result.db_residues, w.db.total_residues());
  EXPECT_EQ(rr.result.msv.n_in, ref.msv.n_in);
  EXPECT_EQ(rr.result.msv.n_passed, ref.msv.n_passed);
  EXPECT_EQ(rr.result.vit.n_passed, ref.vit.n_passed);
  EXPECT_EQ(rr.result.fwd.n_passed, ref.fwd.n_passed);
  ASSERT_EQ(rr.result.hits.size(), ref.hits.size());
  for (std::size_t i = 0; i < ref.hits.size(); ++i) {
    const pipeline::Hit& a = ref.hits[i];
    const pipeline::Hit& b = rr.result.hits[i];
    EXPECT_EQ(a.seq_index, b.seq_index) << i;
    EXPECT_EQ(a.name, b.name) << i;
    EXPECT_EQ(a.msv_bits, b.msv_bits) << i;
    EXPECT_EQ(a.vit_bits, b.vit_bits) << i;
    EXPECT_EQ(a.fwd_bits, b.fwd_bits) << i;
    EXPECT_EQ(a.bias_bits, b.bias_bits) << i;
    EXPECT_EQ(a.pvalue, b.pvalue) << i;
    EXPECT_EQ(a.evalue, b.evalue) << i;
  }
}

// ------------------------------- (b) scatter-gather bit-identity

TEST(ClusterClientTest, MergedSearchBitIdenticalToUnshardedScan) {
  ClusterFixture fx(2);
  const pipeline::SearchResult ref = fx.w.reference();
  ASSERT_FALSE(ref.hits.empty()) << "vacuous workload";

  EXPECT_EQ(fx.cli->probe_all(), 2u);
  const ClusterSearchResult rr = fx.cli->search(fx.search_request());
  expect_cluster_matches_reference(rr, ref, fx.w);

  const ClusterStats st = fx.cli->stats();
  EXPECT_EQ(st.requests, 1u);
  EXPECT_EQ(st.merged_ok, 1u);
  ASSERT_EQ(st.shards.size(), 2u);
  for (const ShardCounters& sc : st.shards) {
    EXPECT_EQ(sc.ok, 1u);
    EXPECT_TRUE(sc.healthy);
  }
  // Per-shard latency + straggler histograms saw the request.
  EXPECT_EQ(fx.cli->shard_histogram(0).count(), 1u);
  EXPECT_EQ(fx.cli->shard_histogram(1).count(), 1u);
  EXPECT_EQ(fx.cli->straggler_histogram().count(), 1u);
}

TEST(ClusterClientTest, ThreeShardsAndTightThresholdStayBitIdentical) {
  ClusterFixture fx(3);
  const pipeline::SearchResult ref = fx.w.reference(1e-3);
  const ClusterSearchResult rr = fx.cli->search(fx.search_request(1e-3));
  expect_cluster_matches_reference(rr, ref, fx.w);
}

TEST(ClusterClientTest, MergedScanBitIdenticalToUnshardedScan) {
  // A small pressed library served by every shard.
  std::vector<hmm::ModelEntry> entries;
  for (int i = 0; i < 3; ++i) {
    hmm::RandomHmmSpec spec;
    spec.length = 36 + 13 * i;
    spec.seed = 700 + static_cast<std::uint64_t>(i);
    hmm::ModelEntry e;
    e.model = hmm::generate_hmm(spec);
    e.model.set_name("CLSCAN" + std::to_string(i));
    e.model_stats = pipeline::HmmSearch(e.model).model_stats();
    entries.push_back(std::move(e));
  }
  const std::string lib = "/tmp/finehmm_test_cluster_scanlib.fhpdb";
  hmm::write_model_db_file(lib, entries);

  ClusterFixture fx(2, ServerConfig{}, lib);

  // The unsharded reference daemon: whole db, same library.
  ServerConfig ref_cfg;
  ref_cfg.scan_threads = 2;
  SearchServer ref_srv(ref_cfg);
  EXPECT_EQ(ref_srv.add_database(fx.w.db), 0u);
  EXPECT_GT(ref_srv.add_model_library(lib), 0u);
  std::remove(lib.c_str());
  LoopbackHub ref_hub;
  auto ref_listener = ref_hub.listener();
  std::thread ref_thread([&] { ref_srv.serve(*ref_listener); });
  BlockingClient ref_cli(ref_hub.connect());
  const server::RemoteScanResult ref = ref_cli.scan(0, 0.5);
  ref_srv.begin_drain();
  ref_thread.join();
  ASSERT_EQ(ref.status, ClientStatus::kOk);

  server::ScanRequest req;
  req.evalue = 0.5;
  const ClusterScanResult rr = fx.cli->scan(req);
  ASSERT_EQ(rr.status, ClientStatus::kOk);
  EXPECT_FALSE(rr.degraded);
  EXPECT_EQ(rr.result.db_sequences, ref.result.db_sequences);
  ASSERT_EQ(rr.result.models.size(), ref.result.models.size());
  bool any_hits = false;
  for (std::size_t mi = 0; mi < ref.result.models.size(); ++mi) {
    EXPECT_EQ(rr.result.models[mi].model_name,
              ref.result.models[mi].model_name);
    const auto& a = ref.result.models[mi].hits;
    const auto& b = rr.result.models[mi].hits;
    ASSERT_EQ(a.size(), b.size()) << mi;
    any_hits = any_hits || !a.empty();
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].seq_index, b[i].seq_index) << mi << ":" << i;
      EXPECT_EQ(a[i].pvalue, b[i].pvalue) << mi << ":" << i;
      EXPECT_EQ(a[i].evalue, b[i].evalue) << mi << ":" << i;
    }
  }
  EXPECT_TRUE(any_hits) << "scan produced no hits; bit-identity vacuous";
}

// ------------------------------------ (c) shard death => degraded

TEST(ClusterClientTest, ShardDeathDegradesTheMergeAndRecovers) {
  ClusterFixture fx(2);
  const pipeline::SearchResult ref = fx.w.reference();

  (*fx.connectable)[1] = false;  // shard 1 is unreachable
  const ClusterSearchResult rr = fx.cli->search(fx.search_request());
  ASSERT_EQ(rr.status, ClientStatus::kOk);
  EXPECT_TRUE(rr.degraded);
  EXPECT_EQ(rr.result.flags, server::kResultDegraded);
  EXPECT_EQ(rr.shards[1].state, ShardState::kDead);
  // The survivors' hits are still exact: every merged hit appears in the
  // unsharded reference with identical bits, only shard 1's are missing.
  const std::size_t cut = fx.ranges[0].second;
  std::size_t expected = 0;
  for (const pipeline::Hit& h : ref.hits) {
    if (h.seq_index < cut) ++expected;
  }
  EXPECT_EQ(rr.result.hits.size(), expected);
  for (const pipeline::Hit& h : rr.result.hits) EXPECT_LT(h.seq_index, cut);

  ClusterStats st = fx.cli->stats();
  EXPECT_EQ(st.degraded_results, 1u);
  EXPECT_FALSE(st.shards[1].healthy);
  EXPECT_EQ(st.shards[1].deaths, 1u);

  // Next request: the shard is back and the merge is whole again.
  (*fx.connectable)[1] = true;
  const ClusterSearchResult rr2 = fx.cli->search(fx.search_request());
  expect_cluster_matches_reference(rr2, ref, fx.w);
  st = fx.cli->stats();
  EXPECT_TRUE(st.shards[1].healthy);
}

TEST(ClusterClientTest, NoDegradedMeansShardDeathFailsTheRequest) {
  ClusterFixture fx(2);
  // Rebuild the client with allow_degraded = false over the same shards.
  ClusterConfig ccfg;
  ccfg.manifest = fx.m;
  ccfg.allow_degraded = false;
  ccfg.connect_retries = 0;
  auto connectable = fx.connectable;
  auto& hubs = fx.hubs;
  ClusterClient strict(
      ccfg, [&hubs, connectable](
                std::size_t shard) -> std::unique_ptr<server::Connection> {
        if (!(*connectable)[shard]) return nullptr;
        return hubs[shard]->connect();
      });
  (*fx.connectable)[0] = false;
  const ClusterSearchResult rr = strict.search(fx.search_request());
  EXPECT_EQ(rr.status, ClientStatus::kError);
  EXPECT_EQ(strict.stats().failures, 1u);
}

// ----------------------------------- (d) deadline beats a slow shard

TEST(ClusterClientTest, SlowShardCannotHoldTheRequestPastItsDeadline) {
  ServerConfig cfg;
  ClusterFixture fx(2, cfg);
  fx.shards[1]->set_paused(true);  // shard 1 admits but never schedules

  const auto start = std::chrono::steady_clock::now();
  const ClusterSearchResult rr =
      fx.cli->search(fx.search_request(10.0, /*deadline_ms=*/300));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_EQ(rr.status, ClientStatus::kError);
  EXPECT_EQ(rr.error.code, server::ErrorCode::kDeadlineExpired);
  EXPECT_EQ(rr.shards[1].state, ShardState::kDeadline);
  // The coordinator enforced the deadline itself: well under the 10 s a
  // hung shard would otherwise cost.
  EXPECT_LT(elapsed, 5.0);
  EXPECT_EQ(fx.cli->stats().deadline_expired, 1u);

  fx.shards[1]->set_paused(false);  // let the fixture drain cleanly
}

// ------------------------------- (e) all shards shed => coordinator sheds

TEST(ClusterClientTest, AllShardsOverloadedShedsTheWholeRequest) {
  ServerConfig cfg;
  cfg.start_paused = true;
  cfg.admission_capacity = 1;
  ClusterFixture fx(2, cfg);

  // Fill every shard's one admission slot with a direct request; those
  // block until unpaused.
  std::vector<std::thread> fillers;
  std::vector<server::RemoteResult> fill_rr(2);
  for (std::size_t k = 0; k < 2; ++k) {
    fillers.emplace_back([&, k] {
      BlockingClient filler(fx.hubs[k]->connect());
      std::ostringstream blob;
      hmm::write_hmm_binary(blob, fx.w.model, nullptr);
      const std::string bytes = blob.str();
      fill_rr[k] = filler.search_blob(
          0, std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
    });
  }
  const auto admitted = [&] {
    return fx.shards[0]->stats().requests_admitted == 1 &&
           fx.shards[1]->stats().requests_admitted == 1;
  };
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!admitted() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(admitted());

  const ClusterSearchResult rr = fx.cli->search(fx.search_request());
  EXPECT_EQ(rr.status, ClientStatus::kOverloaded);
  EXPECT_EQ(rr.overload.queue_capacity, 1u);
  EXPECT_EQ(fx.cli->stats().coordinator_sheds, 1u);

  for (auto& s : fx.shards) s->set_paused(false);
  for (std::thread& t : fillers) t.join();
  for (const server::RemoteResult& f : fill_rr)
    EXPECT_EQ(f.status, ClientStatus::kOk);
}

// ------------------------------------------------- coordinator daemon

TEST(ClusterCoordinatorTest, ServesMergedSearchOverTheWireProtocol) {
  ClusterFixture fx(2);
  const pipeline::SearchResult ref = fx.w.reference();

  ClusterConfig ccfg;
  ccfg.manifest = fx.m;
  ccfg.require_shard_role = true;
  auto& hubs = fx.hubs;
  ClusterCoordinator coord(ccfg, [&hubs](std::size_t shard) {
    return hubs[shard]->connect();
  });
  EXPECT_EQ(coord.client().probe_all(), 2u);

  LoopbackHub front;
  auto listener = front.listener();
  std::thread serve([&] { coord.serve(*listener); });

  BlockingClient client(front.connect());
  // The coordinator's PONG announces its role.
  const auto info = client.ping_info();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->role, server::NodeRole::kCoordinator);

  std::ostringstream blob;
  hmm::write_hmm_binary(blob, fx.w.model, nullptr);
  const std::string bytes = blob.str();
  const server::RemoteResult rr = client.search_blob(
      0, std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  ASSERT_EQ(rr.status, ClientStatus::kOk);
  EXPECT_NE(rr.result.trace_id, 0u);
  ASSERT_EQ(rr.result.hits.size(), ref.hits.size());
  for (std::size_t i = 0; i < ref.hits.size(); ++i) {
    EXPECT_EQ(rr.result.hits[i].seq_index, ref.hits[i].seq_index) << i;
    EXPECT_EQ(rr.result.hits[i].evalue, ref.hits[i].evalue) << i;
  }

  // STATS speaks the cluster schema; /metrics exposes the shard gauges.
  const auto json = client.stats_json();
  ASSERT_TRUE(json.has_value());
  EXPECT_NE(json->find("finehmm.cluster_stats.v1"), std::string::npos);
  EXPECT_NE(json->find("\"merged_ok\": 1"), std::string::npos);
  const server::HttpResponse metrics = coord.handle_http("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("finehmm_cluster_shards_healthy 2"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("finehmm_cluster_straggler_seconds"),
            std::string::npos);
  const server::HttpResponse health = coord.handle_http("/healthz");
  EXPECT_EQ(health.status, 200);

  coord.begin_drain();
  serve.join();
  EXPECT_EQ(coord.handle_http("/healthz").status, 503);
}

TEST(ClusterCoordinatorTest, RejectsLegacyPeersWithVersionMismatch) {
  ClusterFixture fx(1);
  ClusterConfig ccfg;
  ccfg.manifest = fx.m;
  // Re-plan for one shard: reuse fixture's manifest only if single-shard.
  ASSERT_EQ(ccfg.manifest.shards.size(), 1u);
  auto& hubs = fx.hubs;
  ClusterCoordinator coord(ccfg, [&hubs](std::size_t shard) {
    return hubs[shard]->connect();
  });
  LoopbackHub front;
  auto listener = front.listener();
  std::thread serve([&] { coord.serve(*listener); });

  // A legacy peer pings with an empty payload (wire revision 1): the
  // coordinator answers a structured kVersionMismatch, not a kPong.
  auto conn = front.connect();
  ASSERT_TRUE(conn);
  ASSERT_TRUE(server::send_frame(*conn, server::MsgType::kPing, 1, {}));
  server::Frame reply;
  ASSERT_EQ(server::recv_frame(*conn, reply), server::RecvStatus::kFrame);
  ASSERT_EQ(reply.type(), server::MsgType::kError);
  const server::ErrorInfo err = server::decode_error(reply.payload);
  EXPECT_EQ(err.code, server::ErrorCode::kVersionMismatch);
  conn->shutdown();

  coord.begin_drain();
  serve.join();
}

}  // namespace
