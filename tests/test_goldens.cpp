// Golden regression values.
//
// These freeze the *scoring system itself*: scale/base/bias choices, the
// length model, the RNG streams and the DP semantics.  If any of these
// change — even in a way every cross-implementation test still agrees on
// — this test fires, forcing the change to be deliberate.  Values were
// generated from the current implementation and verified against the
// float references at creation time.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "cpu/generic.hpp"
#include "cpu/msv_scalar.hpp"
#include "cpu/ssv.hpp"
#include "cpu/vit_scalar.hpp"
#include "hmm/generator.hpp"

namespace {

using namespace finehmm;

struct Golden {
  std::size_t L;
  float msv, vit, ssv, fwd;
};

TEST(Goldens, ScoringSystemConstants) {
  auto model = hmm::paper_model(48);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  profile::VitProfile vit(prof);
  EXPECT_EQ(msv.base(), 190);
  EXPECT_EQ(msv.bias(), 14);
  EXPECT_EQ(msv.tbm(), 31);
  EXPECT_EQ(msv.tec(), 3);
  EXPECT_EQ(msv.tjb_for(400), 21);
  EXPECT_NEAR(msv.scale(), 3.0 / M_LN2, 1e-5);
  EXPECT_EQ(vit.entry(), -5100);
  EXPECT_NEAR(vit.scale(), 500.0 / M_LN2, 1e-3);
}

TEST(Goldens, FrozenScores) {
  auto model = hmm::paper_model(48);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  profile::VitProfile vit(prof);

  const Golden goldens[] = {
      {100, -10.855669f, -10.741009f, -10.855669f, -7.8214f},
      {157, -8.545177f, -8.651863f, -8.545177f, -7.2844f},
      {214, -8.083079f, -7.689775f, -8.083079f, -6.5986f},
      {271, -10.393570f, -9.981319f, -10.393570f, -7.5179f},
  };

  Pcg32 rng(12345);
  for (const auto& g : goldens) {
    auto seq = bio::random_sequence(g.L, rng);
    ASSERT_EQ(seq.length(), g.L);
    auto m = cpu::msv_scalar(msv, seq.codes.data(), g.L);
    auto v = cpu::vit_scalar(vit, seq.codes.data(), g.L);
    auto s = cpu::ssv_scalar(msv, seq.codes.data(), g.L);
    float f = cpu::generic_forward(prof, seq.codes.data(), g.L, true);
    EXPECT_FLOAT_EQ(m.score_nats, g.msv) << "L=" << g.L;
    EXPECT_FLOAT_EQ(v.score_nats, g.vit) << "L=" << g.L;
    EXPECT_FLOAT_EQ(s.score_nats, g.ssv) << "L=" << g.L;
    EXPECT_NEAR(f, g.fwd, 1e-3f) << "L=" << g.L;
  }
}

}  // namespace
