// Robustness of the parsers: mutated / truncated / hostile inputs must
// throw cleanly (finehmm::Error or derived), never crash or hang.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bio/fasta.hpp"
#include "bio/seq_db_io.hpp"
#include "bio/synthetic.hpp"
#include "hmm/generator.hpp"
#include "hmm/hmm_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace finehmm;

std::string valid_hmm_text() {
  auto model = hmm::paper_model(12);
  std::ostringstream out;
  hmm::write_hmm(out, model);
  return out.str();
}

TEST(IoRobustness, TruncatedHmmAtEveryLineBoundary) {
  std::string text = valid_hmm_text();
  std::vector<std::size_t> cut_points;
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n') cut_points.push_back(i);
  int parsed = 0, threw = 0;
  for (std::size_t cut : cut_points) {
    std::istringstream in(text.substr(0, cut));
    try {
      hmm::read_hmm(in);
      ++parsed;
    } catch (const Error&) {
      ++threw;
    }
  }
  // Only the final '//' cut may still parse; everything shorter throws.
  EXPECT_GE(threw, static_cast<int>(cut_points.size()) - 1);
  EXPECT_LE(parsed, 1);
}

TEST(IoRobustness, MutatedHmmTokensNeverCrash) {
  std::string text = valid_hmm_text();
  Pcg32 rng(99);
  for (int rep = 0; rep < 200; ++rep) {
    std::string mutated = text;
    // Flip a few characters to hostile values.
    for (int m = 0; m < 5; ++m) {
      std::size_t pos = rng.below(static_cast<std::uint32_t>(mutated.size()));
      const char hostile[] = {'x', '*', '-', '\t', '9', '.', 'e'};
      mutated[pos] = hostile[rng.below(sizeof(hostile))];
    }
    std::istringstream in(mutated);
    try {
      auto model = hmm::read_hmm(in);
      // If it parsed, it must at least be structurally sane.
      EXPECT_GE(model.length(), 1);
    } catch (const Error&) {
      // fine
    } catch (const std::exception&) {
      // std::stoi and friends may throw std:: exceptions on hostile
      // numerics before our validation sees them: acceptable, no crash.
    }
  }
}

TEST(IoRobustness, FastaWithHostileBytes) {
  const char* cases[] = {
      ">",
      ">\n",
      ">a\n\n\n",
      ">a\nACGT123\n",       // digits are invalid residues
      ">a desc\nAC DE\n",    // internal whitespace is skipped
      ">a\n>b\nAC\n",        // empty first record
  };
  for (const char* c : cases) {
    std::istringstream in(c);
    try {
      auto db = bio::read_fasta(in);
      for (const auto& s : db) EXPECT_FALSE(s.name.empty());
    } catch (const Error&) {
      // fine
    }
  }
}

TEST(IoRobustness, EmptyInputsGiveEmptyOrThrow) {
  {
    std::istringstream in("");
    auto db = bio::read_fasta(in);
    EXPECT_TRUE(db.empty());
  }
  {
    std::istringstream in("");
    EXPECT_THROW(hmm::read_hmm(in), Error);
  }
}

TEST(IoRobustness, TruncatedSeqDbFileThrowsForBothReaders) {
  Pcg32 rng(61);
  bio::SequenceDatabase db;
  for (int i = 0; i < 8; ++i)
    db.add(bio::random_sequence(30 + rng.below(40), rng,
                                "robust_" + std::to_string(i)));
  std::ostringstream out(std::ios::binary);
  bio::write_seq_db(out, db);
  const std::string bytes = out.str();
  const std::string path = "/tmp/finehmm_robust_trunc.fsqdb";

  // Cut at a spread of offsets: inside the header, the index, and the
  // residue words.  Both the eager reader and the zero-copy view must
  // throw a finehmm::Error that names what came up short, never crash.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{9},
                          bytes.size() / 4, bytes.size() / 2,
                          bytes.size() - 5, bytes.size() - 1}) {
    {
      std::ofstream f(path, std::ios::binary);
      f.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    EXPECT_THROW(bio::read_seq_db_file(path), Error) << "cut=" << cut;
    EXPECT_THROW(bio::MappedSeqDb m(path), Error) << "cut=" << cut;
    try {
      bio::MappedSeqDb m(path);
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << e.what();
    }
  }
  std::remove(path.c_str());
}

TEST(IoRobustness, HmmWithWrongNodeCountThrows) {
  std::string text = valid_hmm_text();
  // Claim 13 nodes while providing 12.
  auto pos = text.find("LENG  12");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "LENG  13");
  std::istringstream in(text);
  EXPECT_THROW(hmm::read_hmm(in), Error);
}

}  // namespace
