// Build smoke test: the library links and basic invariants hold.
#include <gtest/gtest.h>

#include "bio/alphabet.hpp"
#include "util/logspace.hpp"

TEST(Smoke, AlphabetSizes) {
  EXPECT_EQ(finehmm::bio::kK, 20);
  EXPECT_EQ(finehmm::bio::kKp, 29);
}

TEST(Smoke, LogsumIdentity) {
  using finehmm::logsum_exact;
  EXPECT_NEAR(logsum_exact(0.0f, 0.0f), std::log(2.0f), 1e-6f);
}
