// The warp-synchronous kernels must reproduce the scalar reference scores
// bit-for-bit on both simulated architectures, for every parameter
// placement, across model sizes that exercise chunk-boundary geometry.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "cpu/msv_scalar.hpp"
#include "cpu/vit_scalar.hpp"
#include "gpu/search.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"

namespace {

using namespace finehmm;

struct GpuFixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  profile::MsvProfile msv;
  profile::VitProfile vit;
  bio::SequenceDatabase db;
  bio::PackedDatabase packed;

  GpuFixture(int M, std::size_t n_seqs, std::uint64_t seed = 11,
             double delete_extend = 0.5)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          spec.delete_extend = delete_extend;
          return hmm::generate_hmm(spec);
        }()),
        prof(model, hmm::AlignMode::kLocalMultihit, 350),
        msv(prof),
        vit(prof) {
    Pcg32 rng(seed * 31 + 1);
    for (std::size_t i = 0; i < n_seqs; ++i) {
      if (i % 3 == 0) {
        db.add(hmm::sample_homolog(model, rng));
      } else {
        db.add(bio::random_sequence(20 + rng.below(400), rng));
      }
    }
    packed = bio::PackedDatabase(db);
  }
};

class GpuKernelEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GpuKernelEquivalence, WarpMsvMatchesScalar) {
  auto [M, placement_int] = GetParam();
  auto placement = static_cast<gpu::ParamPlacement>(placement_int);
  GpuFixture fx(M, 40);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  auto result = search.run_msv(fx.msv, fx.packed, placement);
  ASSERT_EQ(result.scores.size(), fx.db.size());
  for (std::size_t s = 0; s < fx.db.size(); ++s) {
    auto ref = cpu::msv_scalar(fx.msv, fx.db[s].codes.data(),
                               fx.db[s].length());
    EXPECT_EQ(result.overflow[s] != 0, ref.overflowed) << "seq " << s;
    EXPECT_FLOAT_EQ(result.scores[s], ref.score_nats) << "seq " << s;
  }
}

TEST_P(GpuKernelEquivalence, WarpViterbiMatchesScalar) {
  auto [M, placement_int] = GetParam();
  auto placement = static_cast<gpu::ParamPlacement>(placement_int);
  GpuFixture fx(M, 30);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  auto result = search.run_vit(fx.vit, fx.packed, placement);
  for (std::size_t s = 0; s < fx.db.size(); ++s) {
    auto ref = cpu::vit_scalar(fx.vit, fx.db[s].codes.data(),
                               fx.db[s].length());
    EXPECT_FLOAT_EQ(result.scores[s], ref.score_nats)
        << "seq " << s << " M=" << M;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndPlacements, GpuKernelEquivalence,
    ::testing::Combine(::testing::Values(5, 31, 32, 33, 64, 100, 200),
                       ::testing::Values(0, 1)));

TEST(GpuKernels, ViterbiHighDeleteLazyFMatchesScalar) {
  GpuFixture fx(96, 25, 77, /*delete_extend=*/0.85);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  auto result =
      search.run_vit(fx.vit, fx.packed, gpu::ParamPlacement::kShared);
  for (std::size_t s = 0; s < fx.db.size(); ++s) {
    auto ref = cpu::vit_scalar(fx.vit, fx.db[s].codes.data(),
                               fx.db[s].length());
    EXPECT_FLOAT_EQ(result.scores[s], ref.score_nats) << "seq " << s;
  }
  EXPECT_GT(result.counters.lazyf_inner, result.counters.residues)
      << "high-delete models must trigger extra Lazy-F iterations";
}

TEST(GpuKernels, FermiProducesIdenticalScores) {
  GpuFixture fx(100, 25);
  gpu::GpuSearch kepler(simt::DeviceSpec::tesla_k40());
  gpu::GpuSearch fermi(simt::DeviceSpec::gtx580());
  auto a = kepler.run_msv(fx.msv, fx.packed, gpu::ParamPlacement::kShared);
  auto b = fermi.run_msv(fx.msv, fx.packed, gpu::ParamPlacement::kShared);
  for (std::size_t s = 0; s < fx.db.size(); ++s)
    EXPECT_FLOAT_EQ(a.scores[s], b.scores[s]);
  // Fermi has no shuffle: its reductions go through shared memory.
  EXPECT_EQ(b.counters.shuffles, 0u);
  EXPECT_GT(a.counters.shuffles, 0u);
}

TEST(GpuKernels, SyncKernelMatchesScalarAndCountsSyncs) {
  GpuFixture fx(64, 20);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  auto result = search.run_msv_sync(fx.msv, fx.packed,
                                    gpu::ParamPlacement::kShared, 4);
  for (std::size_t s = 0; s < fx.db.size(); ++s) {
    auto ref = cpu::msv_scalar(fx.msv, fx.db[s].codes.data(),
                               fx.db[s].length());
    EXPECT_FLOAT_EQ(result.scores[s], ref.score_nats) << "seq " << s;
  }
  // At least two barriers per DP row (Fig. 4).
  EXPECT_GE(result.counters.syncs, 2 * result.counters.residues);
}

TEST(GpuKernels, WarpKernelNeverSynchronizes) {
  GpuFixture fx(64, 20);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  auto result =
      search.run_msv(fx.msv, fx.packed, gpu::ParamPlacement::kShared);
  EXPECT_EQ(result.counters.syncs, 0u);
}

TEST(GpuKernels, ItemSubsetScoresOnlyThoseSequences) {
  GpuFixture fx(48, 30);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  std::vector<std::size_t> items = {3, 7, 21};
  auto result =
      search.run_vit(fx.vit, fx.packed, gpu::ParamPlacement::kShared, &items);
  ASSERT_EQ(result.scores.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    auto ref = cpu::vit_scalar(fx.vit, fx.db[items[i]].codes.data(),
                               fx.db[items[i]].length());
    EXPECT_FLOAT_EQ(result.scores[i], ref.score_nats);
  }
}

TEST(MultiGpu, PartitionCoversAllSequencesOnce) {
  GpuFixture fx(32, 57);
  for (std::size_t n_dev : {1u, 2u, 3u, 4u}) {
    auto parts = gpu::partition_by_residues(fx.packed, n_dev);
    ASSERT_EQ(parts.size(), n_dev);
    std::vector<int> seen(fx.db.size(), 0);
    for (const auto& p : parts)
      for (auto s : p) seen[s]++;
    for (auto c : seen) EXPECT_EQ(c, 1);
  }
}

TEST(MultiGpu, PartitionBalancesResidues) {
  GpuFixture fx(32, 200);
  auto parts = gpu::partition_by_residues(fx.packed, 4);
  std::vector<std::uint64_t> residues(4, 0);
  for (std::size_t d = 0; d < 4; ++d)
    for (auto s : parts[d]) residues[d] += fx.packed.length(s);
  std::uint64_t total = fx.packed.total_residues();
  for (auto r : residues) {
    EXPECT_GT(r, total / 4 / 2);
    EXPECT_LT(r, total / 4 * 2);
  }
}

TEST(MultiGpu, FourFermisMatchSingleDeviceScores) {
  GpuFixture fx(64, 40);
  std::vector<simt::DeviceSpec> devs(4, simt::DeviceSpec::gtx580());
  auto multi =
      gpu::run_msv_multi(devs, fx.msv, fx.packed, gpu::ParamPlacement::kShared);
  gpu::GpuSearch single(simt::DeviceSpec::tesla_k40());
  auto ref = single.run_msv(fx.msv, fx.packed, gpu::ParamPlacement::kShared);
  ASSERT_EQ(multi.scores.size(), ref.scores.size());
  for (std::size_t s = 0; s < ref.scores.size(); ++s)
    EXPECT_FLOAT_EQ(multi.scores[s], ref.scores[s]);
}

TEST(LaunchPlan, MsvSharedIsFullOccupancyForSmallModels) {
  auto dev = simt::DeviceSpec::tesla_k40();
  auto plan = gpu::plan_launch(gpu::Stage::kMsv, gpu::ParamPlacement::kShared,
                               200, dev);
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.occ.fraction, 1.0);  // §IV: 100% below size 400
}

TEST(LaunchPlan, MsvSharedOccupancyDropsForLargeModels) {
  auto dev = simt::DeviceSpec::tesla_k40();
  auto small = gpu::plan_launch(gpu::Stage::kMsv,
                                gpu::ParamPlacement::kShared, 200, dev);
  auto big = gpu::plan_launch(gpu::Stage::kMsv, gpu::ParamPlacement::kShared,
                              1528, dev);
  ASSERT_TRUE(big.feasible);  // 1528 still fits in shared (§IV)
  EXPECT_LT(big.occ.fraction, small.occ.fraction);
  auto too_big = gpu::plan_launch(gpu::Stage::kMsv,
                                  gpu::ParamPlacement::kShared, 2405, dev);
  auto global_big = gpu::plan_launch(gpu::Stage::kMsv,
                                     gpu::ParamPlacement::kGlobal, 2405, dev);
  ASSERT_TRUE(global_big.feasible);
  // Global placement must beat shared for the largest paper model.
  if (too_big.feasible) {
    EXPECT_GT(global_big.occ.fraction, too_big.occ.fraction);
  }
}

TEST(LaunchPlan, ViterbiOccupancyCapsAt50PercentOnKepler) {
  auto dev = simt::DeviceSpec::tesla_k40();
  auto plan = gpu::plan_launch(gpu::Stage::kViterbi,
                               gpu::ParamPlacement::kShared, 48, dev);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.occ.fraction, 0.5);  // §IV: registers cap Viterbi at 50%
  EXPECT_DOUBLE_EQ(plan.occ.fraction, 0.5);
}

}  // namespace
