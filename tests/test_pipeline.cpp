// The hmmsearch acceleration pipeline: filtering behaviour, CPU/GPU
// agreement, sensitivity (all planted homologs found).
#include <gtest/gtest.h>

#include "hmm/generator.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/workload.hpp"

namespace {

using namespace finehmm;
using pipeline::HmmSearch;
using pipeline::WorkloadSpec;

struct PipelineFixture {
  hmm::Plan7Hmm model;
  bio::SequenceDatabase db;
  bio::PackedDatabase packed;

  explicit PipelineFixture(int M = 100, std::size_t n = 600,
                           double hom_frac = 0.02)
      : model(hmm::paper_model(M)) {
    WorkloadSpec spec;
    spec.db.name = "test";
    spec.db.n_sequences = n;
    spec.db.log_length_mu = 5.0;
    spec.db.log_length_sigma = 0.4;
    spec.db.seed = 99;
    spec.homolog_fraction = hom_frac;
    db = pipeline::make_workload(model, spec);
    packed = bio::PackedDatabase(db);
  }
};

TEST(Pipeline, MsvPassRateTracksThreshold) {
  PipelineFixture fx(100, 800, 0.0);  // pure null database
  HmmSearch search(fx.model);
  auto result = search.run_cpu(fx.db);
  // With P <= 0.02 on null sequences, about 2% should pass (the paper's
  // Fig. 1 reports 2.2% on Env_nr).
  EXPECT_GT(result.msv.pass_rate(), 0.002);
  EXPECT_LT(result.msv.pass_rate(), 0.08);
  // And almost nothing should reach Forward.
  EXPECT_LT(static_cast<double>(result.fwd.n_in) / result.msv.n_in, 0.01);
}

TEST(Pipeline, FindsPlantedHomologs) {
  PipelineFixture fx(100, 400, 0.03);
  HmmSearch search(fx.model);
  auto result = search.run_cpu(fx.db);
  // Count planted homologs found among hits.
  std::size_t planted = 0, found = 0;
  for (std::size_t s = 0; s < fx.db.size(); ++s)
    if (fx.db[s].name.rfind("homolog_", 0) == 0) ++planted;
  for (const auto& hit : result.hits)
    if (hit.name.rfind("homolog_", 0) == 0) ++found;
  ASSERT_GT(planted, 0u);
  // Full-length homologs are easy; demand high sensitivity.
  EXPECT_GE(static_cast<double>(found) / planted, 0.9);
}

TEST(Pipeline, HitsAreSortedByEvalue) {
  PipelineFixture fx(80, 400, 0.05);
  HmmSearch search(fx.model);
  auto result = search.run_cpu(fx.db);
  for (std::size_t i = 1; i < result.hits.size(); ++i)
    EXPECT_LE(result.hits[i - 1].evalue, result.hits[i].evalue);
}

TEST(Pipeline, GpuEngineFindsTheSameHits) {
  PipelineFixture fx(64, 300, 0.04);
  HmmSearch search(fx.model);
  auto cpu_result = search.run_cpu(fx.db);
  auto gpu_result = search.run_gpu(simt::DeviceSpec::tesla_k40(), fx.db,
                                   fx.packed, gpu::ParamPlacement::kShared);
  ASSERT_EQ(cpu_result.hits.size(), gpu_result.hits.size());
  for (std::size_t i = 0; i < cpu_result.hits.size(); ++i) {
    EXPECT_EQ(cpu_result.hits[i].seq_index, gpu_result.hits[i].seq_index);
    EXPECT_FLOAT_EQ(cpu_result.hits[i].fwd_bits, gpu_result.hits[i].fwd_bits);
  }
  // Stage pass counts must agree exactly (bit-identical filters).
  EXPECT_EQ(cpu_result.msv.n_passed, gpu_result.msv.n_passed);
  EXPECT_EQ(cpu_result.vit.n_passed, gpu_result.vit.n_passed);
}

TEST(Pipeline, GpuGlobalPlacementAgreesWithShared) {
  PipelineFixture fx(64, 200, 0.04);
  HmmSearch search(fx.model);
  auto a = search.run_gpu(simt::DeviceSpec::tesla_k40(), fx.db, fx.packed,
                          gpu::ParamPlacement::kShared);
  auto b = search.run_gpu(simt::DeviceSpec::tesla_k40(), fx.db, fx.packed,
                          gpu::ParamPlacement::kGlobal);
  EXPECT_EQ(a.msv.n_passed, b.msv.n_passed);
  EXPECT_EQ(a.hits.size(), b.hits.size());
}

TEST(Pipeline, MsvDominatesExecutionTime) {
  PipelineFixture fx(100, 800, 0.01);
  HmmSearch search(fx.model);
  auto r = search.run_cpu(fx.db);
  // Fig. 1: MSV is ~80% of the pipeline; at minimum it must dominate
  // cells evaluated by a wide margin.
  EXPECT_GT(r.msv.cells, 10.0 * r.vit.cells);
}

TEST(Workload, HomologFractionControlsPlantedCount) {
  auto model = hmm::paper_model(60);
  WorkloadSpec spec;
  spec.db.n_sequences = 500;
  spec.homolog_fraction = 0.1;
  auto db = pipeline::make_workload(model, spec);
  std::size_t planted = 0;
  for (std::size_t s = 0; s < db.size(); ++s)
    if (db[s].name.rfind("homolog_", 0) == 0) ++planted;
  // Slots are chosen randomly with replacement, so a few collide.
  EXPECT_GT(planted, 30u);
  EXPECT_LE(planted, 50u);
}

}  // namespace
