// null2 composition-bias correction.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "cpu/trace.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"
#include "pipeline/null2.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/workload.hpp"

namespace {

using namespace finehmm;

TEST(Null2, CorrectionIsNonNegative) {
  auto model = hmm::paper_model(60);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 200);
  Pcg32 rng(1);
  for (int rep = 0; rep < 10; ++rep) {
    auto seq = rep % 2 ? hmm::sample_homolog(model, rng)
                       : bio::random_sequence(100, rng);
    auto trace = cpu::viterbi_trace(prof, seq.codes.data(), seq.length());
    EXPECT_GE(pipeline::null2_correction(prof, trace, seq.codes.data()),
              0.0f);
  }
}

TEST(Null2, UnbiasedHomologsLoseAlmostNothing) {
  auto model = hmm::paper_model(80);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 200);
  Pcg32 rng(5);
  double total = 0.0;
  for (int rep = 0; rep < 8; ++rep) {
    auto seq = hmm::sample_homolog(model, rng);
    auto trace = cpu::viterbi_trace(prof, seq.codes.data(), seq.length());
    total += pipeline::null2_correction(prof, trace, seq.codes.data());
  }
  // True homologs genuinely share the model's composition, so a few nats
  // of correction are expected — but not tens.
  EXPECT_LT(total / 8.0, 8.0);
}

TEST(Null2, BiasedSequenceGetsLargerCorrectionThanCleanOne) {
  // A model with an extremely A-rich block: a poly-A target aligns it and
  // should be flagged as compositionally biased.
  hmm::Plan7Hmm model(40);
  model.set_name("arich");
  const auto& bg = bio::background_frequencies();
  for (int k = 1; k <= 40; ++k)
    for (int a = 0; a < bio::kK; ++a)
      model.mat(k, a) = a == 0 ? 0.9f : 0.1f / 19.0f;
  for (int k = 0; k <= 40; ++k) {
    for (int a = 0; a < bio::kK; ++a) model.ins(k, a) = bg[a];
    model.tr(k, hmm::kTMM) = 0.98f;
    model.tr(k, hmm::kTMI) = 0.01f;
    model.tr(k, hmm::kTMD) = 0.01f;
    model.tr(k, hmm::kTIM) = 0.5f;
    model.tr(k, hmm::kTII) = 0.5f;
    model.tr(k, hmm::kTDM) = 0.5f;
    model.tr(k, hmm::kTDD) = 0.5f;
  }
  model.tr(40, hmm::kTMM) = 1.0f;
  model.tr(40, hmm::kTMI) = 0.0f;
  model.tr(40, hmm::kTMD) = 0.0f;
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 100);

  std::vector<std::uint8_t> polya(100, 0);  // AAAA...
  auto trace_a = cpu::viterbi_trace(prof, polya.data(), polya.size());
  float bias_a = pipeline::null2_correction(prof, trace_a, polya.data());

  Pcg32 rng(9);
  auto clean = bio::random_sequence(100, rng);
  auto trace_c =
      cpu::viterbi_trace(prof, clean.codes.data(), clean.length());
  float bias_c =
      pipeline::null2_correction(prof, trace_c, clean.codes.data());

  EXPECT_GT(bias_a, bias_c + 5.0f)
      << "poly-A vs A-rich model must be heavily corrected";
}

TEST(Null2, PipelineBiasColumnIsPopulated) {
  auto model = hmm::paper_model(70);
  pipeline::WorkloadSpec spec;
  spec.db.n_sequences = 200;
  spec.homolog_fraction = 0.05;
  auto db = pipeline::make_workload(model, spec);
  pipeline::HmmSearch search(model);  // null2 on by default
  auto result = search.run_cpu(db);
  ASSERT_FALSE(result.hits.empty());
  for (const auto& hit : result.hits) EXPECT_GE(hit.bias_bits, 0.0f);
}

TEST(Null2, DisablingTheCorrectionRaisesScores) {
  auto model = hmm::paper_model(70);
  pipeline::WorkloadSpec spec;
  spec.db.n_sequences = 200;
  spec.homolog_fraction = 0.05;
  auto db = pipeline::make_workload(model, spec);

  pipeline::Thresholds with;
  pipeline::Thresholds without;
  without.null2_correction = false;
  pipeline::HmmSearch s_with(model, with);
  pipeline::HmmSearch s_without(model, without);
  auto r_with = s_with.run_cpu(db);
  auto r_without = s_without.run_cpu(db);
  ASSERT_FALSE(r_with.hits.empty());
  ASSERT_EQ(r_with.hits.size(), r_without.hits.size());
  for (std::size_t i = 0; i < r_with.hits.size(); ++i)
    EXPECT_LE(r_with.hits[i].fwd_bits, r_without.hits[i].fwd_bits + 1e-4f);
}

}  // namespace
