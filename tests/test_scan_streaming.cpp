// The streaming-scan determinism contract: every CPU engine (serial,
// bucketed-parallel, overlapped) over either database representation
// (heap SequenceDatabase, zero-copy MappedSeqDb) must report bit-identical
// hits and identical stage statistics — the scan order and the worker
// interleaving are implementation details that may never leak into
// results.  Plus unit tests for the length-bucketed schedule itself.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bio/seq_db_io.hpp"
#include "hmm/generator.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/workload.hpp"

namespace {

using namespace finehmm;
using pipeline::HmmSearch;
using pipeline::SearchResult;
using pipeline::StageStats;

struct StreamingFixture {
  hmm::Plan7Hmm model;
  bio::SequenceDatabase db;
  std::string path;

  explicit StreamingFixture(int M = 80, std::size_t n = 300,
                            double hom_frac = 0.04)
      : model(hmm::paper_model(M)),
        // ctest runs tests as concurrent processes; keep the temp file
        // unique per fixture shape so parallel tests cannot collide.
        path("/tmp/finehmm_test_streaming_" + std::to_string(M) + "_" +
             std::to_string(n) + ".fsqdb") {
    pipeline::WorkloadSpec spec;
    spec.db.name = "stream";
    spec.db.n_sequences = n;
    spec.db.log_length_mu = 4.6;
    spec.db.log_length_sigma = 0.5;
    spec.db.seed = 77;
    spec.homolog_fraction = hom_frac;
    db = pipeline::make_workload(model, spec);
    // Zero-length sequences are legal database entries; every engine must
    // fail them at the first active stage without scoring them.
    db.add(bio::Sequence::from_text("empty_1", ""));
    db.add(bio::Sequence::from_text("empty_2", ""));
    bio::write_seq_db_file(path, db);
  }
  ~StreamingFixture() { std::remove(path.c_str()); }
};

void expect_same_stage(const StageStats& a, const StageStats& b,
                       const char* stage) {
  EXPECT_EQ(a.n_in, b.n_in) << stage;
  EXPECT_EQ(a.n_passed, b.n_passed) << stage;
  EXPECT_EQ(a.cells, b.cells) << stage;  // exact: same summation order
}

void expect_bit_identical(const SearchResult& ref, const SearchResult& got,
                          const char* label) {
  SCOPED_TRACE(label);
  expect_same_stage(ref.ssv, got.ssv, "ssv");
  expect_same_stage(ref.msv, got.msv, "msv");
  expect_same_stage(ref.vit, got.vit, "vit");
  expect_same_stage(ref.fwd, got.fwd, "fwd");
  ASSERT_EQ(ref.hits.size(), got.hits.size());
  for (std::size_t i = 0; i < ref.hits.size(); ++i) {
    const auto& a = ref.hits[i];
    const auto& b = got.hits[i];
    EXPECT_EQ(a.seq_index, b.seq_index) << i;
    EXPECT_EQ(a.name, b.name) << i;
    // Bit-identical, not approximately equal: == on float/double.
    EXPECT_EQ(a.msv_bits, b.msv_bits) << i;
    EXPECT_EQ(a.vit_bits, b.vit_bits) << i;
    EXPECT_EQ(a.fwd_bits, b.fwd_bits) << i;
    EXPECT_EQ(a.bias_bits, b.bias_bits) << i;
    EXPECT_EQ(a.pvalue, b.pvalue) << i;
    EXPECT_EQ(a.evalue, b.evalue) << i;
    ASSERT_EQ(a.alignments.size(), b.alignments.size()) << i;
    for (std::size_t j = 0; j < a.alignments.size(); ++j) {
      EXPECT_EQ(a.alignments[j].k_start, b.alignments[j].k_start);
      EXPECT_EQ(a.alignments[j].k_end, b.alignments[j].k_end);
      EXPECT_EQ(a.alignments[j].i_start, b.alignments[j].i_start);
      EXPECT_EQ(a.alignments[j].i_end, b.alignments[j].i_end);
      EXPECT_EQ(a.alignments[j].seq_line, b.alignments[j].seq_line);
    }
    ASSERT_EQ(a.domains.size(), b.domains.size()) << i;
    for (std::size_t j = 0; j < a.domains.size(); ++j) {
      EXPECT_EQ(a.domains[j].i_start, b.domains[j].i_start);
      EXPECT_EQ(a.domains[j].i_end, b.domains[j].i_end);
      EXPECT_EQ(a.domains[j].bits, b.domains[j].bits);
    }
  }
}

/// Run all engines over both representations and demand they match the
/// serial heap scan bit-for-bit.
void check_all_engines(const StreamingFixture& fx,
                       pipeline::Thresholds thr) {
  HmmSearch search(fx.model, thr);
  bio::MappedSeqDb mapped(fx.path);
  const SearchResult ref = search.run_cpu(fx.db);
  ASSERT_FALSE(ref.msv.n_in == 0);

  expect_bit_identical(ref, search.run_cpu(mapped), "serial/mapped");
  expect_bit_identical(ref, search.run_cpu_parallel(fx.db, 3),
                       "parallel/heap");
  expect_bit_identical(ref, search.run_cpu_parallel(mapped, 3),
                       "parallel/mapped");
  expect_bit_identical(ref, search.run_cpu_overlapped(fx.db, 3),
                       "overlapped/heap");
  expect_bit_identical(ref, search.run_cpu_overlapped(mapped, 3),
                       "overlapped/mapped");
  // Single-worker overlapped exercises the help-first backpressure path.
  expect_bit_identical(ref, search.run_cpu_overlapped(mapped, 1),
                       "overlapped/mapped/1thread");
}

TEST(ScanStreaming, EnginesBitIdenticalDefaultThresholds) {
  StreamingFixture fx;
  check_all_engines(fx, {});
}

TEST(ScanStreaming, EnginesBitIdenticalWithSsvAlignmentsDomains) {
  StreamingFixture fx(64, 260, 0.06);
  pipeline::Thresholds thr;
  thr.use_ssv_prefilter = true;
  thr.compute_alignments = true;
  thr.define_domains = true;
  check_all_engines(fx, thr);
}

TEST(ScanStreaming, ZeroLengthSequencesAreCountedButNeverHit) {
  StreamingFixture fx(60, 120, 0.05);
  HmmSearch search(fx.model);
  bio::MappedSeqDb mapped(fx.path);
  auto ref = search.run_cpu(fx.db);
  EXPECT_EQ(ref.msv.n_in, fx.db.size());  // empties counted in
  for (const auto& h : ref.hits)
    EXPECT_NE(h.name.rfind("empty_", 0), 0u) << h.name;
  expect_bit_identical(ref, search.run_cpu_overlapped(mapped, 2),
                       "overlapped/mapped");
}

// ---------------------------------------------------------------------------
// make_length_schedule

TEST(LengthSchedule, IsAPermutationLongestFirstAscendingWithin) {
  std::vector<std::size_t> lengths = {5,  900, 33, 0,  64, 65, 7000, 32,
                                      31, 900, 1,  70, 0,  128, 129, 5};
  auto sched = pipeline::make_length_schedule(
      lengths.size(), [&](std::size_t i) { return lengths[i]; });
  ASSERT_EQ(sched.order.size(), lengths.size());

  std::vector<int> seen(lengths.size(), 0);
  for (auto i : sched.order) {
    ASSERT_LT(i, lengths.size());
    seen[i]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);  // a permutation

  auto bucket = [](std::size_t len) {
    int b = 0;
    for (std::size_t v = len >> 5; v != 0; v >>= 1) ++b;
    return b;
  };
  for (std::size_t k = 1; k < sched.order.size(); ++k) {
    int prev = bucket(lengths[sched.order[k - 1]]);
    int cur = bucket(lengths[sched.order[k]]);
    EXPECT_GE(prev, cur) << k;  // longest buckets first
    if (prev == cur) {
      EXPECT_LT(sched.order[k - 1], sched.order[k]) << k;  // index order
    }
  }
  // Distinct non-empty buckets of the lengths above: {0,1,2,3,5,8}.
  EXPECT_EQ(sched.n_buckets, 6u);
}

TEST(LengthSchedule, EmptyAndUniform) {
  auto empty = pipeline::make_length_schedule(
      0, [](std::size_t) { return std::size_t{0}; });
  EXPECT_TRUE(empty.order.empty());
  EXPECT_EQ(empty.n_buckets, 0u);

  auto uniform = pipeline::make_length_schedule(
      10, [](std::size_t) { return std::size_t{100}; });
  ASSERT_EQ(uniform.order.size(), 10u);
  EXPECT_EQ(uniform.n_buckets, 1u);
  for (std::size_t i = 0; i < uniform.order.size(); ++i)
    EXPECT_EQ(uniform.order[i], i);  // one bucket -> identity order
}

}  // namespace
