// Checkpointed Forward/Backward tier equivalence.
//
// FwdFilter::decode runs the striped probability-space Forward with
// checkpointed rows, then reconstructs each block and sweeps Backward
// over it, producing the per-residue model occupancy (mocc).  These
// tests pin its contract at every compiled-and-supported tier:
//
//   * the score decode returns is bit-identical to FwdFilter::score —
//     the checkpointed forward pass IS the scoring pass, recording rows
//     on the side must not perturb a single float;
//   * the 4-lane tiers (portable, SSE2) agree bit for bit; wider tiers
//     reassociate the probability-space sums and carry the documented
//     log-sum tolerance (docs/simd_dispatch.md, "Numerical contract");
//   * mocc matches the scalar log-space checkpointed decoder
//     (cpu/checkpoint.hpp), which is itself pinned against the full
//     O(M*L) posterior matrices — closing the loop to the reference;
//   * domain envelopes defined from the vector decode match the scalar
//     define_domains path on planted-motif sequences;
//   * a FwdFilter built on shared re-striped stripes (the BatchScanner
//     configuration) scores identically to one that built its own.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bio/synthetic.hpp"
#include "cpu/checkpoint.hpp"
#include "cpu/fwd_filter.hpp"
#include "cpu/posterior.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "hmm/generator.hpp"
#include "hmm/profile.hpp"
#include "hmm/sampler.hpp"
#include "profile/fwd_profile.hpp"

namespace {

using namespace finehmm;
using cpu::SimdTier;

struct Fixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  profile::FwdProfile fwd;

  explicit Fixture(int M, std::uint64_t seed = 7)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          return hmm::generate_hmm(spec);
        }()),
        prof(model, hmm::AlignMode::kLocalMultihit, 400),
        fwd(prof) {}
};

std::vector<bio::Sequence> test_sequences(const Fixture& fx, int n = 6) {
  Pcg32 rng(41);
  std::vector<bio::Sequence> seqs;
  for (int rep = 0; rep < n; ++rep)
    seqs.push_back(bio::random_sequence(1 + rng.below(400), rng));
  seqs.push_back(bio::random_sequence(1, rng));
  // One true homolog so high-occupancy rows are exercised too.
  seqs.push_back(hmm::sample_homolog(fx.model, rng));
  return seqs;
}

// Tolerances: wide tiers reassociate probability-space sums (score, in
// nats) and the occupancy track is a ratio of two such sums (absolute,
// probabilities in [0, 1]).  Documented in docs/simd_dispatch.md.
float score_tol(std::size_t L) { return 0.02f + 1e-4f * static_cast<float>(L); }
constexpr float kMoccTol = 5e-3f;

class FwdBwdTiers : public ::testing::TestWithParam<int> {};

TEST_P(FwdBwdTiers, DecodeScoreIsBitIdenticalToScore) {
  Fixture fx(GetParam());
  auto seqs = test_sequences(fx);
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    cpu::FwdFilter filter(fx.fwd, tier);
    std::vector<float> mocc;
    for (const auto& seq : seqs) {
      float want = filter.score(seq.codes.data(), seq.length());
      float got = filter.decode(seq.codes.data(), seq.length(), mocc);
      EXPECT_EQ(want, got) << "tier=" << cpu::simd_tier_name(tier)
                           << " L=" << seq.length();
    }
  }
}

TEST_P(FwdBwdTiers, MoccMatchesScalarCheckpointReference) {
  Fixture fx(GetParam());
  auto seqs = test_sequences(fx, 4);
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    cpu::FwdFilter filter(fx.fwd, tier);
    std::vector<float> mocc;
    for (const auto& seq : seqs) {
      auto ref = cpu::model_occupancy_checkpointed(fx.prof, seq.codes.data(),
                                                   seq.length());
      filter.decode(seq.codes.data(), seq.length(), mocc);
      ASSERT_GE(mocc.size(), seq.length());
      for (std::size_t i = 0; i < seq.length(); ++i)
        ASSERT_NEAR(ref.mocc[i], mocc[i], kMoccTol)
            << "tier=" << cpu::simd_tier_name(tier) << " L=" << seq.length()
            << " i=" << i;
    }
  }
}

TEST_P(FwdBwdTiers, WideTiersAgreeWithPortableWithinTolerance) {
  Fixture fx(GetParam());
  auto seqs = test_sequences(fx);
  cpu::FwdFilter portable(fx.fwd, SimdTier::kPortable);
  std::vector<float> pmocc, tmocc;
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    cpu::FwdFilter filter(fx.fwd, tier);
    for (const auto& seq : seqs) {
      float ref = portable.decode(seq.codes.data(), seq.length(), pmocc);
      float got = filter.decode(seq.codes.data(), seq.length(), tmocc);
      if (tier <= SimdTier::kSse2) {
        // Same lane count, same summation order: bit-identical.
        EXPECT_EQ(ref, got) << "tier=" << cpu::simd_tier_name(tier);
        for (std::size_t i = 0; i < seq.length(); ++i)
          ASSERT_EQ(pmocc[i], tmocc[i])
              << "tier=" << cpu::simd_tier_name(tier) << " i=" << i;
      } else {
        EXPECT_NEAR(ref, got, score_tol(seq.length()))
            << "tier=" << cpu::simd_tier_name(tier);
        for (std::size_t i = 0; i < seq.length(); ++i)
          ASSERT_NEAR(pmocc[i], tmocc[i], kMoccTol)
              << "tier=" << cpu::simd_tier_name(tier) << " i=" << i;
      }
    }
  }
}

TEST_P(FwdBwdTiers, DomainsFromDecodeMatchScalarDefineDomains) {
  Fixture fx(GetParam());
  // 80 random + full homolog core + 80 random: one strong domain.
  Pcg32 rng(19);
  auto flank1 = bio::random_sequence(80, rng);
  hmm::SampleOptions opts;
  opts.fragment_prob = 0.0;
  opts.mean_flank = 1e-9;
  auto core = hmm::sample_homolog(fx.model, rng, opts);
  auto flank2 = bio::random_sequence(80, rng);
  std::vector<std::uint8_t> seq;
  seq.insert(seq.end(), flank1.codes.begin(), flank1.codes.end());
  seq.insert(seq.end(), core.codes.begin(), core.codes.end());
  seq.insert(seq.end(), flank2.codes.begin(), flank2.codes.end());

  auto ref = cpu::define_domains(fx.prof, seq.data(), seq.size());
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    cpu::FwdFilter filter(fx.fwd, tier);
    std::vector<float> mocc;
    filter.decode(seq.data(), seq.size(), mocc);
    auto got =
        cpu::domains_from_occupancy(fx.prof, seq.data(), seq.size(),
                                    mocc.data());
    ASSERT_EQ(got.size(), ref.size()) << "tier=" << cpu::simd_tier_name(tier);
    for (std::size_t d = 0; d < ref.size(); ++d) {
      EXPECT_EQ(got[d].i_start, ref[d].i_start)
          << "tier=" << cpu::simd_tier_name(tier);
      EXPECT_EQ(got[d].i_end, ref[d].i_end)
          << "tier=" << cpu::simd_tier_name(tier);
      // Same envelope => same scalar rescore, bit for bit.
      EXPECT_EQ(got[d].bits, ref[d].bits);
    }
  }
}

TEST_P(FwdBwdTiers, SharedStripesScoreIdentically) {
  Fixture fx(GetParam());
  auto seqs = test_sequences(fx, 3);
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    const auto& ops = cpu::backend::tier_kernels(cpu::resolve_simd_tier(tier));
    auto shared =
        std::make_shared<const cpu::WideFwdStripes>(fx.fwd, ops.f32_lanes);
    cpu::FwdFilter own(fx.fwd, tier);
    cpu::FwdFilter borrowed(fx.fwd, tier, shared);
    std::vector<float> mo, mb;
    for (const auto& seq : seqs) {
      EXPECT_EQ(own.score(seq.codes.data(), seq.length()),
                borrowed.score(seq.codes.data(), seq.length()))
          << "tier=" << cpu::simd_tier_name(tier);
      float so = own.decode(seq.codes.data(), seq.length(), mo);
      float sb = borrowed.decode(seq.codes.data(), seq.length(), mb);
      EXPECT_EQ(so, sb);
      for (std::size_t i = 0; i < seq.length(); ++i) ASSERT_EQ(mo[i], mb[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ModelLengths, FwdBwdTiers,
                         ::testing::Values(48, 400, 1002));

}  // namespace
