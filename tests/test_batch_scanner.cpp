// BatchScanner: the allocation-free scan contract, the chunked dynamic
// scheduler underneath it, and whole-pipeline equality across tiers.
//
// This file (and the finehmm_simd_tests binary it lives in) replaces the
// global operator new/delete with counting versions, so the zero-
// allocation claim is measured, not asserted: after construction, scoring
// any number of sequences through a BatchScanner must perform exactly
// zero heap allocations on the scoring threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "bio/seq_db_io.hpp"
#include "bio/synthetic.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "hmm/generator.hpp"
#include "hmm/profile.hpp"
#include "pipeline/batch_scanner.hpp"
#include "pipeline/multi_search.hpp"
#include "pipeline/pipeline.hpp"
#include "util/threadpool.hpp"

namespace {
std::atomic<long> g_allocations{0};
}

// The replaced operators pair malloc with free by design; with the
// definitions visible in this TU, GCC 12 inlines callers and flags the
// free() as -Wmismatched-new-delete (it cannot know the replaced new is
// malloc-backed).  False positive for the global-replacement pattern.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace finehmm;

struct Fixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  profile::MsvProfile msv;
  profile::VitProfile vit;
  profile::FwdProfile fwd;

  explicit Fixture(int M, std::uint64_t seed = 7)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          return hmm::generate_hmm(spec);
        }()),
        prof(model, hmm::AlignMode::kLocalMultihit, 400),
        msv(prof),
        vit(prof),
        fwd(prof) {}
};

bio::SequenceDatabase small_db(std::size_t n, std::uint64_t seed = 11) {
  bio::SyntheticDbSpec spec;
  spec.name = "test";
  spec.n_sequences = n;
  spec.min_length = 10;
  spec.max_length = 700;
  spec.seed = seed;
  return bio::generate_database(spec);
}

TEST(BatchScanner, ScanHotLoopPerformsZeroHeapAllocations) {
  Fixture fx(173);
  auto db = small_db(60);
  pipeline::BatchScanner scanner(fx.msv, fx.vit, &fx.fwd, /*workers=*/1);

  // Warm-up pass: first calls may touch lazily-grown library state.
  for (std::size_t s = 0; s < db.size(); ++s) {
    scanner.ssv(0, db[s].codes.data(), db[s].length());
    scanner.msv(0, db[s].codes.data(), db[s].length());
    scanner.vit(0, db[s].codes.data(), db[s].length());
    scanner.fwd(0, db[s].codes.data(), db[s].length());
  }

  const long before = g_allocations.load();
  for (int rep = 0; rep < 3; ++rep) {
    for (std::size_t s = 0; s < db.size(); ++s) {
      scanner.ssv(0, db[s].codes.data(), db[s].length());
      scanner.msv(0, db[s].codes.data(), db[s].length());
      scanner.vit(0, db[s].codes.data(), db[s].length());
      scanner.fwd(0, db[s].codes.data(), db[s].length());
    }
  }
  EXPECT_EQ(g_allocations.load() - before, 0)
      << "scan hot loop must not allocate";
}

// The checkpointed Forward/Backward decode reuses its workspace: after a
// warm-up pass grew it to the longest sequence (and mocc to match),
// repeat decodes perform zero heap allocations on any tier.
TEST(BatchScanner, DecodeHotLoopPerformsZeroHeapAllocations) {
  Fixture fx(173);
  auto db = small_db(30);
  for (cpu::SimdTier tier : cpu::supported_simd_tiers()) {
    pipeline::BatchScanner scanner(fx.msv, fx.vit, &fx.fwd, 1, tier);
    std::vector<float> mocc;

    // Warm-up: grows the checkpoint workspace monotonically to the
    // longest sequence and sizes the caller's mocc buffer.
    for (std::size_t s = 0; s < db.size(); ++s)
      scanner.decode(0, db[s].codes.data(), db[s].length(), mocc);

    const long before = g_allocations.load();
    for (int rep = 0; rep < 3; ++rep)
      for (std::size_t s = 0; s < db.size(); ++s)
        scanner.decode(0, db[s].codes.data(), db[s].length(), mocc);
    EXPECT_EQ(g_allocations.load() - before, 0)
        << "decode hot loop must not allocate (tier="
        << cpu::simd_tier_name(tier) << ")";
  }
}

TEST(BatchScanner, WorkersScoreIdentically) {
  Fixture fx(210);
  auto db = small_db(20);
  pipeline::BatchScanner scanner(fx.msv, fx.vit, &fx.fwd, /*workers=*/3);
  ASSERT_EQ(scanner.workers(), 3u);
  for (std::size_t s = 0; s < db.size(); ++s) {
    auto m0 = scanner.msv(0, db[s].codes.data(), db[s].length());
    auto v0 = scanner.vit(0, db[s].codes.data(), db[s].length());
    float f0 = scanner.fwd(0, db[s].codes.data(), db[s].length());
    for (std::size_t w = 1; w < scanner.workers(); ++w) {
      auto mw = scanner.msv(w, db[s].codes.data(), db[s].length());
      auto vw = scanner.vit(w, db[s].codes.data(), db[s].length());
      float fw = scanner.fwd(w, db[s].codes.data(), db[s].length());
      EXPECT_EQ(m0.score_nats, mw.score_nats);
      EXPECT_EQ(v0.score_nats, vw.score_nats);
      EXPECT_EQ(f0, fw);
    }
  }
}

TEST(BatchScanner, EveryTierScoresLikePortable) {
  Fixture fx(95);
  auto db = small_db(15);
  pipeline::BatchScanner ref(fx.msv, fx.vit, &fx.fwd, 1,
                             cpu::SimdTier::kPortable);
  for (cpu::SimdTier tier : cpu::supported_simd_tiers()) {
    pipeline::BatchScanner scanner(fx.msv, fx.vit, &fx.fwd, 1, tier);
    EXPECT_EQ(scanner.tier(), tier);
    for (std::size_t s = 0; s < db.size(); ++s) {
      const auto* codes = db[s].codes.data();
      const std::size_t L = db[s].length();
      EXPECT_EQ(ref.ssv(0, codes, L).score_nats,
                scanner.ssv(0, codes, L).score_nats);
      EXPECT_EQ(ref.msv(0, codes, L).score_nats,
                scanner.msv(0, codes, L).score_nats);
      EXPECT_EQ(ref.vit(0, codes, L).score_nats,
                scanner.vit(0, codes, L).score_nats);
      // Forward runs natively at the tier's width: 4-lane tiers are
      // bit-exact against each other, wider tiers reassociate the
      // probability-space sums and carry the documented log-sum
      // tolerance (docs/simd_dispatch.md, "Numerical contract").
      const float fr = ref.fwd(0, codes, L);
      const float fg = scanner.fwd(0, codes, L);
      if (tier <= cpu::SimdTier::kSse2)
        EXPECT_EQ(fr, fg) << cpu::simd_tier_name(tier) << " L=" << L;
      else
        EXPECT_NEAR(fr, fg, 0.02f + 1e-4f * static_cast<float>(L))
            << cpu::simd_tier_name(tier) << " L=" << L;
    }
  }
}

// The packed (zero-copy) overloads must reproduce the byte-code scores
// bit-for-bit on every supported tier: both paths instantiate the same
// kernel loop, only the residue accessor differs.
TEST(BatchScanner, PackedOverloadsMatchByteCodesOnEveryTier) {
  Fixture fx(131);
  auto db = small_db(25, 17);
  const std::string path = "/tmp/finehmm_test_scanner.fsqdb";
  bio::write_seq_db_file(path, db);
  bio::MappedSeqDb mapped(path);
  ASSERT_EQ(mapped.size(), db.size());

  for (cpu::SimdTier tier : cpu::supported_simd_tiers()) {
    pipeline::BatchScanner scanner(fx.msv, fx.vit, &fx.fwd, 1, tier);
    for (std::size_t s = 0; s < db.size(); ++s) {
      const auto* codes = db[s].codes.data();
      const std::size_t L = db[s].length();
      auto sp = scanner.ssv(0, mapped.residues(s), L);
      auto sb = scanner.ssv(0, codes, L);
      EXPECT_EQ(sp.score_nats, sb.score_nats)
          << cpu::simd_tier_name(tier) << " s=" << s;
      EXPECT_EQ(sp.overflowed, sb.overflowed);
      auto mp = scanner.msv(0, mapped.residues(s), L);
      auto mb = scanner.msv(0, codes, L);
      EXPECT_EQ(mp.score_nats, mb.score_nats)
          << cpu::simd_tier_name(tier) << " s=" << s;
      EXPECT_EQ(mp.overflowed, mb.overflowed);
    }
  }
  std::remove(path.c_str());
}

// The zero-copy contract, measured: scanning a MappedSeqDb through the
// byte filters performs zero heap allocations and zero residue copies per
// sequence (the packed words are consumed in place).
TEST(BatchScanner, MappedScanPerformsZeroHeapAllocations) {
  Fixture fx(140);
  auto db = small_db(50, 29);
  const std::string path = "/tmp/finehmm_test_scanner_alloc.fsqdb";
  bio::write_seq_db_file(path, db);
  bio::MappedSeqDb mapped(path);
  pipeline::BatchScanner scanner(fx.msv, fx.vit, &fx.fwd, /*workers=*/1);

  // Warm-up pass (lazily-grown library state).
  for (std::size_t s = 0; s < mapped.size(); ++s) {
    scanner.ssv(0, mapped.residues(s), mapped.length(s));
    scanner.msv(0, mapped.residues(s), mapped.length(s));
  }

  const long before = g_allocations.load();
  for (int rep = 0; rep < 3; ++rep) {
    for (std::size_t s = 0; s < mapped.size(); ++s) {
      scanner.ssv(0, mapped.residues(s), mapped.length(s));
      scanner.msv(0, mapped.residues(s), mapped.length(s));
    }
  }
  EXPECT_EQ(g_allocations.load() - before, 0)
      << "mmap-backed byte-filter scan must not allocate";
  std::remove(path.c_str());
}

TEST(BatchScanner, ZeroLengthSequencesScoreAsNoHit) {
  Fixture fx(50);
  pipeline::BatchScanner scanner(fx.msv, fx.vit, &fx.fwd, 1);
  const std::uint8_t* none = nullptr;
  auto s = scanner.ssv(0, none, 0);
  auto m = scanner.msv(0, none, 0);
  auto v = scanner.vit(0, none, 0);
  float f = scanner.fwd(0, none, 0);
  EXPECT_FALSE(s.overflowed);
  EXPECT_FALSE(m.overflowed);
  EXPECT_TRUE(std::isinf(s.score_nats) && s.score_nats < 0);
  EXPECT_TRUE(std::isinf(m.score_nats) && m.score_nats < 0);
  EXPECT_TRUE(std::isinf(v.score_nats) && v.score_nats < 0);
  EXPECT_TRUE(std::isinf(f) && f < 0);
  // Packed overloads agree.
  EXPECT_TRUE(std::isinf(
      scanner.msv(0, bio::PackedResidues(nullptr), 0).score_nats));
}

TEST(ThreadPoolChunked, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (std::size_t count : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    for (std::size_t chunk : {0ul, 1ul, 3ul, 16ul, 2000ul}) {
      std::vector<std::atomic<int>> seen(count);
      for (auto& s : seen) s.store(0);
      pool.parallel_for_chunked(
          count, chunk,
          [&](std::size_t worker, std::size_t begin, std::size_t end) {
            EXPECT_LT(worker, pool.workers());
            ASSERT_LE(begin, end);
            ASSERT_LE(end, count);
            for (std::size_t i = begin; i < end; ++i)
              seen[i].fetch_add(1);
          });
      for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(seen[i].load(), 1) << "count=" << count
                                     << " chunk=" << chunk << " i=" << i;
    }
  }
}

TEST(ThreadPoolChunked, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_chunked(100, 8,
                                [&](std::size_t, std::size_t begin,
                                    std::size_t) {
                                  if (begin >= 48)
                                    throw std::runtime_error("boom");
                                }),
      std::runtime_error);
}

// Whole-pipeline invariance: the hit list must not depend on the tier or
// on serial vs. pooled execution.  Viterbi-class scores are bit-exact at
// every width; Forward bit scores carry the documented log-sum tolerance
// across tier widths (docs/simd_dispatch.md) but must be bit-identical
// between engines running the same tier.
TEST(PipelineTiers, HitsIdenticalAcrossTiersAndEngines) {
  hmm::RandomHmmSpec spec;
  spec.length = 120;
  spec.seed = 3;
  auto model = hmm::generate_hmm(spec);
  stats::CalibrateOptions calib;
  calib.n_samples = 60;
  pipeline::Thresholds thr;
  thr.use_ssv_prefilter = true;
  thr.report_evalue = 1e6;  // report plenty of hits so equality is strict
  pipeline::HmmSearch search(model, thr, calib);
  auto db = small_db(40, 23);

  cpu::set_simd_tier(cpu::SimdTier::kPortable);
  auto ref = search.run_cpu(db);
  for (cpu::SimdTier tier : cpu::supported_simd_tiers()) {
    cpu::set_simd_tier(tier);
    auto serial = search.run_cpu(db);
    auto pooled = search.run_cpu_parallel(db, 3);
    for (const auto* got : {&serial, &pooled}) {
      ASSERT_EQ(got->hits.size(), ref.hits.size())
          << "tier=" << cpu::simd_tier_name(tier);
      for (std::size_t i = 0; i < ref.hits.size(); ++i) {
        EXPECT_EQ(got->hits[i].seq_index, ref.hits[i].seq_index);
        EXPECT_NEAR(got->hits[i].fwd_bits, ref.hits[i].fwd_bits, 0.2f)
            << "tier=" << cpu::simd_tier_name(tier);
        EXPECT_EQ(got->hits[i].vit_bits, ref.hits[i].vit_bits);
      }
    }
    // Same tier, different engines: bit-identical, including Forward.
    ASSERT_EQ(pooled.hits.size(), serial.hits.size());
    for (std::size_t i = 0; i < serial.hits.size(); ++i)
      EXPECT_EQ(pooled.hits[i].fwd_bits, serial.hits[i].fwd_bits);
  }
  cpu::reset_simd_tier();
}

TEST(PipelineTiers, MultiSearchParallelMatchesSerial) {
  stats::CalibrateOptions calib;
  calib.n_samples = 50;
  std::vector<hmm::Plan7Hmm> models;
  for (int M : {60, 140}) {
    hmm::RandomHmmSpec spec;
    spec.length = M;
    spec.seed = static_cast<std::uint64_t>(M);
    models.push_back(hmm::generate_hmm(spec));
  }
  pipeline::Thresholds thr;
  thr.report_evalue = 1e6;
  pipeline::MultiSearch multi(std::move(models), thr, calib);
  auto db = small_db(30, 5);

  auto serial = multi.run_cpu(db);
  auto pooled = multi.run_cpu_parallel(db, 3);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t m = 0; m < serial.size(); ++m) {
    ASSERT_EQ(serial[m].result.hits.size(), pooled[m].result.hits.size());
    for (std::size_t i = 0; i < serial[m].result.hits.size(); ++i) {
      EXPECT_EQ(serial[m].result.hits[i].seq_index,
                pooled[m].result.hits[i].seq_index);
      EXPECT_EQ(serial[m].result.hits[i].fwd_bits,
                pooled[m].result.hits[i].fwd_bits);
    }
  }
}

}  // namespace
