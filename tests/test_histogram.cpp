// The always-on latency histograms (obs/histogram.hpp): bucket geometry
// pinned exactly, merge-of-per-thread == one global recorder, quantile
// monotonicity and edge cases, and the ConcurrentHistogram snapshot
// contract.  Lives in the obs test binary next to test_telemetry.cpp,
// which additionally proves the recording path allocates nothing (the
// counting operator new lives in that TU).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "obs/histogram.hpp"

namespace {

using namespace finehmm;
using B = obs::HistogramBuckets;

// ------------------------------------------------------ bucket geometry

TEST(HistogramBuckets, SmallValuesIndexThemselves) {
  // Octave 0: every value below kSubBuckets is its own bucket — the
  // histogram is exact for tiny values.
  for (std::uint64_t v = 0; v < B::kSubBuckets; ++v) {
    EXPECT_EQ(B::index_of(v), v);
    EXPECT_EQ(B::lower_bound(v), v);
    EXPECT_EQ(B::upper_bound(v), v);
  }
}

TEST(HistogramBuckets, BoundariesBracketTheirBucket) {
  // lower_bound / upper_bound invert index_of across the whole range:
  // both edges land back in the bucket, and the next value after the
  // upper edge lands in a later one.
  std::uint64_t probes[] = {0,     1,     63,    64,    65,    127,
                            128,   1000,  4095,  4096,  1u << 20,
                            (1u << 20) + 12345, std::uint64_t{1} << 40,
                            ~std::uint64_t{0}};
  for (std::uint64_t v : probes) {
    const std::uint64_t idx = B::index_of(v);
    ASSERT_LT(idx, B::kBucketCount);
    EXPECT_LE(B::lower_bound(idx), v);
    EXPECT_GE(B::upper_bound(idx), v);
    EXPECT_EQ(B::index_of(B::lower_bound(idx)), idx);
    if (idx + 1 < B::kBucketCount) {
      EXPECT_EQ(B::index_of(B::upper_bound(idx)), idx);
      EXPECT_GT(B::index_of(B::upper_bound(idx) + 1), idx);
    }
  }
}

TEST(HistogramBuckets, IndexIsMonotoneAcrossOctaveSeams) {
  // Walk the first few octave seams densely: the index never decreases,
  // and within one octave consecutive values move at most one bucket.
  // (Across a seam the index jumps — each octave run's lower half is
  // unreachable since the leading sub-bucket bits start at 32 — which is
  // fine: index_of stays monotone and the table stays constant-time.)
  std::uint64_t prev = B::index_of(0);
  for (std::uint64_t v = 1; v < (std::uint64_t{1} << 14); ++v) {
    const std::uint64_t idx = B::index_of(v);
    EXPECT_GE(idx, prev) << "v=" << v;
    if (std::bit_width(v) == std::bit_width(v - 1)) {
      EXPECT_LE(idx - prev, 1u) << "v=" << v;
    }
    prev = idx;
  }
}

TEST(HistogramBuckets, RelativeErrorBoundHolds) {
  // Bucket width is 2^exponent and the leading sub-bucket bits are at
  // least kSubBuckets/2, so the quantization error is bounded by
  // 2/kSubBuckets (~3.1%) everywhere and 1/kSubBuckets at octave tops.
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng() >> (rng() % 50);  // spread the octaves
    const std::uint64_t idx = B::index_of(v);
    const double width = static_cast<double>(B::upper_bound(idx)) -
                         static_cast<double>(B::lower_bound(idx));
    if (v >= B::kSubBuckets && idx + 1 < B::kBucketCount) {
      EXPECT_LE(width, 2.0 * static_cast<double>(v) / B::kSubBuckets + 1.0)
          << "v=" << v;
    }
  }
}

// ------------------------------------------------------------ recording

TEST(Histogram, CountSumMaxTrackRecords) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty -> 0, not UB
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.max(), 30u);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
}

TEST(Histogram, ExactQuantilesInTheLinearOctave) {
  // Values below kSubBuckets are bucketed exactly, so quantiles are
  // exact order statistics there.
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 50; ++v) h.record(v);
  EXPECT_EQ(h.quantile(0.0), 1u);   // ceil(0*50) clamped to first sample
  EXPECT_EQ(h.quantile(0.5), 25u);
  EXPECT_EQ(h.quantile(1.0), 50u);
}

TEST(Histogram, QuantileIsMonotoneInQ) {
  obs::Histogram h;
  std::mt19937_64 rng(11);
  std::lognormal_distribution<double> lat(14.0, 1.5);  // ~ns latencies
  for (int i = 0; i < 5000; ++i)
    h.record(static_cast<std::uint64_t>(lat(rng)));
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const std::uint64_t v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  // And the top quantile never exceeds the recorded max (the upper edge
  // is clamped to it).
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(Histogram, QuantileNeverUnderstates) {
  // The conservative upper-edge estimate: for every recorded sample set,
  // quantile(q) >= the true order statistic.
  obs::Histogram h;
  std::vector<std::uint64_t> samples;
  std::mt19937_64 rng(23);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng() % 1000000;
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(q * (samples.size() - 1));
    EXPECT_GE(h.quantile(q), samples[rank]) << "q=" << q;
  }
}

TEST(Histogram, MergeOfPerThreadSlotsEqualsGlobal) {
  // The daemon merges per-thread Histograms at serial points; the result
  // must be indistinguishable from one recorder that saw every sample.
  constexpr int kThreads = 4;
  obs::Histogram global;
  obs::Histogram slots[kThreads];
  std::mt19937_64 rng(31);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng() % (std::uint64_t{1} << 30);
    global.record(v);
    slots[i % kThreads].record(v);
  }
  obs::Histogram merged;
  for (const auto& s : slots) merged.merge(s);
  EXPECT_EQ(merged.count(), global.count());
  EXPECT_EQ(merged.sum(), global.sum());
  EXPECT_EQ(merged.max(), global.max());
  for (std::uint64_t b = 0; b < B::kBucketCount; ++b)
    ASSERT_EQ(merged.bucket(b), global.bucket(b)) << "bucket " << b;
  for (double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(merged.quantile(q), global.quantile(q)) << "q=" << q;
}

TEST(ConcurrentHistogram, SnapshotMatchesPlainRecorder) {
  obs::ConcurrentHistogram ch;
  obs::Histogram plain;
  std::mt19937_64 rng(41);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng() % (std::uint64_t{1} << 24);
    ch.record(v);
    plain.record(v);
  }
  EXPECT_EQ(ch.count(), plain.count());
  const obs::Histogram snap = ch.snapshot();
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_EQ(snap.sum(), plain.sum());
  for (std::uint64_t b = 0; b < B::kBucketCount; ++b)
    ASSERT_EQ(snap.bucket(b), plain.bucket(b)) << "bucket " << b;
  for (double q : {0.5, 0.9})
    EXPECT_EQ(snap.quantile(q), plain.quantile(q)) << "q=" << q;
  // The lock-free snapshot's max is the top nonempty bucket's upper
  // edge (the exact max isn't tracked atomically), so quantiles landing
  // in that top bucket can only round UP relative to the single-writer
  // recorder — never down.
  EXPECT_GE(snap.max(), plain.max());
  for (double q : {0.99, 0.999})
    EXPECT_GE(snap.quantile(q), plain.quantile(q)) << "q=" << q;
}

TEST(LatencyQuantiles, ReportsTheStandardSet) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const auto lq = obs::latency_quantiles(h);
  EXPECT_EQ(lq.count, 1000u);
  EXPECT_EQ(lq.sum, h.sum());
  EXPECT_EQ(lq.p50, h.quantile(0.50));
  EXPECT_EQ(lq.p90, h.quantile(0.90));
  EXPECT_EQ(lq.p99, h.quantile(0.99));
  EXPECT_EQ(lq.p999, h.quantile(0.999));
  EXPECT_LE(lq.p50, lq.p90);
  EXPECT_LE(lq.p90, lq.p99);
  EXPECT_LE(lq.p99, lq.p999);
}

}  // namespace
