// Binary sequence database round trip and robustness.
#include <gtest/gtest.h>

#include <sstream>

#include "bio/fasta.hpp"
#include "bio/seq_db_io.hpp"
#include "bio/synthetic.hpp"
#include "util/error.hpp"

namespace {

using namespace finehmm;
using namespace finehmm::bio;

TEST(SeqDbIo, RoundTripPreservesEverything) {
  Pcg32 rng(41);
  SequenceDatabase db;
  for (int i = 0; i < 25; ++i)
    db.add(random_sequence(1 + rng.below(200), rng, "seq_" +
                                                        std::to_string(i)));
  // Include degenerate codes too.
  db.add(Sequence::from_text("degen", "ACDXBZJOU"));

  std::ostringstream out(std::ios::binary);
  write_seq_db(out, db);
  std::istringstream in(out.str(), std::ios::binary);
  auto back = read_seq_db(in);

  ASSERT_EQ(back.size(), db.size());
  EXPECT_EQ(back.total_residues(), db.total_residues());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(back[i].name, db[i].name);
    EXPECT_EQ(back[i].codes, db[i].codes);
  }
}

TEST(SeqDbIo, SmallerThanFasta) {
  auto spec = SyntheticDbSpec::swissprot_like(0.0001);
  auto db = generate_database(spec);
  std::ostringstream bin(std::ios::binary);
  write_seq_db(bin, db);
  std::ostringstream fasta;
  write_fasta(fasta, db);
  EXPECT_LT(bin.str().size(), fasta.str().size() * 3 / 4);
}

TEST(SeqDbIo, RejectsGarbage) {
  std::istringstream in("not a database at all, sorry", std::ios::binary);
  EXPECT_THROW(read_seq_db(in), Error);
}

TEST(SeqDbIo, RejectsTruncation) {
  Pcg32 rng(43);
  SequenceDatabase db;
  for (int i = 0; i < 5; ++i) db.add(random_sequence(50, rng));
  std::ostringstream out(std::ios::binary);
  write_seq_db(out, db);
  std::string bytes = out.str();
  for (std::size_t frac = 1; frac <= 3; ++frac) {
    std::istringstream in(bytes.substr(0, bytes.size() * frac / 4),
                          std::ios::binary);
    EXPECT_THROW(read_seq_db(in), Error) << frac;
  }
}

}  // namespace
