// Binary sequence database round trip and robustness, for both readers:
// the eager decoder (read_seq_db) and the zero-copy view (MappedSeqDb).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bio/fasta.hpp"
#include "bio/seq_db_io.hpp"
#include "bio/synthetic.hpp"
#include "util/error.hpp"

namespace {

using namespace finehmm;
using namespace finehmm::bio;

/// Self-deleting temp file holding the given bytes.  The path embeds a
/// process-wide counter plus the test name so concurrent ctest processes
/// (and sequential TempDbs within one test) never collide.
struct TempDb {
  std::string path;
  explicit TempDb(const std::string& bytes) {
    static int counter = 0;
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path = std::string("/tmp/finehmm_") +
           (info ? info->name() : "seqdb") + "_" +
           std::to_string(counter++) + ".fsqdb";
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ~TempDb() { std::remove(path.c_str()); }
};

std::string serialize(const SequenceDatabase& db) {
  std::ostringstream out(std::ios::binary);
  write_seq_db(out, db);
  return out.str();
}

SequenceDatabase mixed_db() {
  Pcg32 rng(47);
  SequenceDatabase db;
  for (int i = 0; i < 20; ++i)
    db.add(random_sequence(1 + rng.below(150), rng,
                           "seq_" + std::to_string(i)));
  db.add(Sequence::from_text("empty", ""));
  db.add(Sequence::from_text("degen", "ACDXBZJOU"));
  db.add(Sequence::from_text("", "ACD"));  // nameless is legal
  return db;
}

TEST(SeqDbIo, RoundTripPreservesEverything) {
  Pcg32 rng(41);
  SequenceDatabase db;
  for (int i = 0; i < 25; ++i)
    db.add(random_sequence(1 + rng.below(200), rng, "seq_" +
                                                        std::to_string(i)));
  // Include degenerate codes too.
  db.add(Sequence::from_text("degen", "ACDXBZJOU"));

  std::ostringstream out(std::ios::binary);
  write_seq_db(out, db);
  std::istringstream in(out.str(), std::ios::binary);
  auto back = read_seq_db(in);

  ASSERT_EQ(back.size(), db.size());
  EXPECT_EQ(back.total_residues(), db.total_residues());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(back[i].name, db[i].name);
    EXPECT_EQ(back[i].codes, db[i].codes);
  }
}

TEST(SeqDbIo, SmallerThanFasta) {
  auto spec = SyntheticDbSpec::swissprot_like(0.0001);
  auto db = generate_database(spec);
  std::ostringstream bin(std::ios::binary);
  write_seq_db(bin, db);
  std::ostringstream fasta;
  write_fasta(fasta, db);
  EXPECT_LT(bin.str().size(), fasta.str().size() * 3 / 4);
}

TEST(SeqDbIo, RejectsGarbage) {
  std::istringstream in("not a database at all, sorry", std::ios::binary);
  EXPECT_THROW(read_seq_db(in), Error);
}

TEST(SeqDbIo, RejectsTruncation) {
  Pcg32 rng(43);
  SequenceDatabase db;
  for (int i = 0; i < 5; ++i) db.add(random_sequence(50, rng));
  std::ostringstream out(std::ios::binary);
  write_seq_db(out, db);
  std::string bytes = out.str();
  for (std::size_t frac = 1; frac <= 3; ++frac) {
    std::istringstream in(bytes.substr(0, bytes.size() * frac / 4),
                          std::ios::binary);
    EXPECT_THROW(read_seq_db(in), Error) << frac;
  }
}

TEST(SeqDbIo, TruncationErrorNamesTheField) {
  SequenceDatabase db;
  db.add(Sequence::from_text("a", "ACDEF"));
  std::string bytes = serialize(db);
  // Cut inside the residue words (keep header + index intact).
  std::istringstream in(bytes.substr(0, bytes.size() - 2),
                        std::ios::binary);
  try {
    read_seq_db(in);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("residue words"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// MappedSeqDb: the zero-copy reader must agree byte-for-byte with the
// eager decoder on the same file, on both backings.

TEST(MappedSeqDb, MatchesEagerReaderOnBothBackings) {
  auto db = mixed_db();
  TempDb file(serialize(db));
  for (auto backing :
       {MappedSeqDb::Backing::kAuto, MappedSeqDb::Backing::kBuffered}) {
    MappedSeqDb mapped(file.path, backing);
    ASSERT_EQ(mapped.size(), db.size());
    EXPECT_EQ(mapped.total_residues(), db.total_residues());
    EXPECT_EQ(mapped.max_length(), db.max_length());
    for (std::size_t i = 0; i < db.size(); ++i) {
      EXPECT_EQ(mapped.name(i), db[i].name) << i;
      ASSERT_EQ(mapped.length(i), db[i].length()) << i;
      auto packed = mapped.residues(i);
      for (std::size_t r = 0; r < db[i].length(); ++r)
        ASSERT_EQ(packed[r], db[i].codes[r]) << i << ":" << r;
    }
    auto materialized = mapped.materialize();
    ASSERT_EQ(materialized.size(), db.size());
    for (std::size_t i = 0; i < db.size(); ++i) {
      EXPECT_EQ(materialized[i].name, db[i].name);
      EXPECT_EQ(materialized[i].codes, db[i].codes);
    }
  }
}

TEST(MappedSeqDb, PrefersMmapWhereAvailable) {
  auto db = mixed_db();
  TempDb file(serialize(db));
  MappedSeqDb mapped(file.path);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(mapped.mmap_backed());
#endif
  MappedSeqDb buffered(file.path, MappedSeqDb::Backing::kBuffered);
  EXPECT_FALSE(buffered.mmap_backed());
}

TEST(MappedSeqDb, MoveTransfersTheView) {
  auto db = mixed_db();
  TempDb file(serialize(db));
  for (auto backing :
       {MappedSeqDb::Backing::kAuto, MappedSeqDb::Backing::kBuffered}) {
    MappedSeqDb a(file.path, backing);
    MappedSeqDb b(std::move(a));
    ASSERT_EQ(b.size(), db.size());
    EXPECT_EQ(b.name(0), db[0].name);
    EXPECT_EQ(b.residues(0)[0], db[0].codes[0]);
    MappedSeqDb c(file.path, backing);
    c = std::move(b);
    ASSERT_EQ(c.size(), db.size());
    EXPECT_EQ(c.name(1), db[1].name);
  }
}

TEST(MappedSeqDb, EmptyDatabase) {
  TempDb file(serialize(SequenceDatabase{}));
  MappedSeqDb mapped(file.path);
  EXPECT_EQ(mapped.size(), 0u);
  EXPECT_EQ(mapped.total_residues(), 0u);
  EXPECT_EQ(mapped.max_length(), 0u);
}

TEST(MappedSeqDb, RejectsTruncationAtEveryPrefix) {
  SequenceDatabase db;
  Pcg32 rng(51);
  for (int i = 0; i < 3; ++i) db.add(random_sequence(20, rng));
  std::string bytes = serialize(db);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    TempDb file(bytes.substr(0, cut));
    EXPECT_THROW(MappedSeqDb m(file.path), Error) << "cut=" << cut;
  }
}

TEST(MappedSeqDb, RejectsGarbageAndBadMagic) {
  {
    TempDb file("not a database at all, sorry");
    EXPECT_THROW(MappedSeqDb m(file.path), Error);
  }
  {
    EXPECT_THROW(MappedSeqDb m("/tmp/finehmm_test_does_not_exist.fsqdb"),
                 Error);
  }
}

TEST(MappedSeqDb, RejectsCorruptResidueCodes) {
  SequenceDatabase db;
  db.add(Sequence::from_text("a", "ACDEFG"));
  std::string bytes = serialize(db);
  // The packed words are the last 4 bytes; force residue 0's 5-bit slot to
  // 31 (a pad code, invalid inside a sequence).
  bytes[bytes.size() - 4] = static_cast<char>(
      static_cast<unsigned char>(bytes[bytes.size() - 4]) | 0x1f);
  TempDb file(bytes);
  EXPECT_THROW(MappedSeqDb m(file.path), Error);
}

TEST(MappedSeqDb, RejectsWordCountMismatch) {
  SequenceDatabase db;
  db.add(Sequence::from_text("a", "ACDEFGH"));
  std::string bytes = serialize(db);
  // total_words sits 8 bytes before the (two-word) residue payload.
  bytes[bytes.size() - 2 * 4 - 8] ^= 1;
  TempDb file(bytes);
  EXPECT_THROW(MappedSeqDb m(file.path), Error);
}

}  // namespace
