// Plan-7 model, profile configuration, HMM I/O, builder, sampler.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "cpu/generic.hpp"
#include "util/error.hpp"
#include "hmm/builder.hpp"
#include "hmm/generator.hpp"
#include "hmm/hmm_io.hpp"
#include "hmm/profile.hpp"
#include "hmm/sampler.hpp"

namespace {

using namespace finehmm;
using namespace finehmm::hmm;

TEST(Plan7, GeneratedModelsValidateAcrossSizes) {
  for (int M : {1, 2, 48, 100, 2405}) {
    auto hmm = paper_model(M);
    EXPECT_EQ(hmm.length(), M);
    EXPECT_NO_THROW(hmm.validate());
  }
}

TEST(Plan7, RenormalizeFixesPerturbedModel) {
  auto hmm = paper_model(20);
  hmm.mat(3, 0) += 0.5f;
  EXPECT_THROW(hmm.validate(1e-4f), Error);
  hmm.renormalize();
  EXPECT_NO_THROW(hmm.validate(1e-4f));
}

TEST(Plan7, OccupancyInUnitRangeAndHighForMatchRichModels) {
  auto hmm = paper_model(64);
  auto occ = hmm.match_occupancy();
  ASSERT_EQ(occ.size(), 65u);
  for (int k = 1; k <= 64; ++k) {
    EXPECT_GE(occ[k], 0.0f);
    EXPECT_LE(occ[k], 1.0f + 1e-5f);
  }
  // With ~1% indel rates the middle of the model is nearly always used.
  EXPECT_GT(occ[32], 0.9f);
}

TEST(Plan7, ConsensusPicksDominantResidues) {
  std::vector<std::string> aln = {"MKVA", "MKVA", "MKVA", "MKVC"};
  auto hmm = build_from_alignment(aln, "cons");
  auto c = hmm.consensus();
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.substr(0, 3), "MKV") << "fully conserved columns, uppercase";
  EXPECT_EQ(std::toupper(c[3]), 'A') << "majority residue";
}

TEST(HmmIo, RoundTripPreservesProbabilities) {
  auto hmm = paper_model(33);
  std::ostringstream out;
  write_hmm(out, hmm);
  std::istringstream in(out.str());
  auto back = read_hmm(in);
  ASSERT_EQ(back.length(), hmm.length());
  EXPECT_EQ(back.name(), hmm.name());
  for (int k = 1; k <= hmm.length(); ++k)
    for (int a = 0; a < bio::kK; ++a)
      EXPECT_NEAR(back.mat(k, a), hmm.mat(k, a), 2e-5f)
          << "k=" << k << " a=" << a;
  for (int k = 0; k <= hmm.length(); ++k)
    for (int t = 0; t < kNTransitions; ++t)
      EXPECT_NEAR(back.tr(k, static_cast<Plan7Transition>(t)),
                  hmm.tr(k, static_cast<Plan7Transition>(t)), 2e-5f);
  EXPECT_NO_THROW(back.validate(1e-2f));
}

TEST(HmmIo, StatsLinesRoundTrip) {
  auto hmm = paper_model(24);
  stats::ModelStats st;
  st.msv = {-7.25, stats::kLambdaLog2};
  st.vit = {-8.5, stats::kLambdaLog2};
  st.fwd = {-3.125, stats::kLambdaLog2};
  std::ostringstream out;
  write_hmm(out, hmm, &st);
  std::istringstream in(out.str());
  std::optional<stats::ModelStats> back;
  read_hmm(in, &back);
  ASSERT_TRUE(back.has_value());
  EXPECT_NEAR(back->msv.mu, st.msv.mu, 1e-3);
  EXPECT_NEAR(back->vit.mu, st.vit.mu, 1e-3);
  EXPECT_NEAR(back->fwd.mu, st.fwd.mu, 1e-3);
  EXPECT_NEAR(back->msv.lambda, stats::kLambdaLog2, 1e-4);
}

TEST(HmmIo, MissingStatsYieldsNullopt) {
  auto hmm = paper_model(10);
  std::ostringstream out;
  write_hmm(out, hmm);  // no stats
  std::istringstream in(out.str());
  std::optional<stats::ModelStats> back;
  read_hmm(in, &back);
  EXPECT_FALSE(back.has_value());
}

TEST(HmmIo, RejectsGarbage) {
  std::istringstream in("not an hmm file\n");
  EXPECT_THROW(read_hmm(in), Error);
}

TEST(HmmIo, RejectsTruncatedFile) {
  auto hmm = paper_model(5);
  std::ostringstream out;
  write_hmm(out, hmm);
  std::string text = out.str();
  std::istringstream in(text.substr(0, text.size() / 2));
  EXPECT_THROW(read_hmm(in), Error);
}

TEST(Profile, EntryScoreMatchesUniformFragmentModel) {
  auto hmm = paper_model(100);
  SearchProfile prof(hmm, AlignMode::kLocalMultihit, 350);
  float expected = std::log(2.0f / (100.0f * 101.0f));
  for (int k = 0; k < 100; ++k)
    EXPECT_FLOAT_EQ(prof.tsc(k, kPTBM), expected);
}

TEST(Profile, LengthModelNormalizes) {
  auto hmm = paper_model(10);
  SearchProfile prof(hmm, AlignMode::kLocalMultihit, 100);
  auto xs = prof.xsc();
  EXPECT_NEAR(std::exp(xs.n_loop) + std::exp(xs.n_move), 1.0, 1e-5);
  EXPECT_NEAR(std::exp(xs.e_c) + std::exp(xs.e_j), 1.0, 1e-5);
}

TEST(Profile, UnihitDisablesJ) {
  auto hmm = paper_model(10);
  SearchProfile prof(hmm, AlignMode::kLocalUnihit, 100);
  EXPECT_EQ(prof.xsc().e_j, kNegInf);
  EXPECT_FLOAT_EQ(prof.xsc().e_c, 0.0f);
}

TEST(Profile, DegenerateScoresAreWeightedAverages) {
  auto hmm = paper_model(50);
  SearchProfile prof(hmm, AlignMode::kLocalMultihit, 350);
  const auto& bg = bio::background_frequencies();
  // B = {D(2), N(11)}.
  for (int k = 1; k <= 50; ++k) {
    float expect = (bg[2] * prof.msc(k, 2) + bg[11] * prof.msc(k, 11)) /
                   (bg[2] + bg[11]);
    EXPECT_NEAR(prof.msc(k, bio::kCodeB), expect, 1e-4f);
  }
}

TEST(Profile, Null1MatchesClosedForm) {
  for (int L : {10, 100, 1000}) {
    float lf = static_cast<float>(L);
    float expect =
        lf * std::log(lf / (lf + 1.0f)) + std::log(1.0f / (lf + 1.0f));
    // Allow for float rounding differences between 1 - L/(L+1) and 1/(L+1).
    EXPECT_NEAR(null1_score(L), expect, 2e-3f);
  }
}

TEST(Sampler, HomologLengthsAreReasonable) {
  auto hmm = paper_model(80);
  Pcg32 rng(5);
  for (int i = 0; i < 20; ++i) {
    auto seq = sample_homolog(hmm, rng);
    EXPECT_GE(seq.length(), 1u);
    EXPECT_LT(seq.length(), 2000u);
    for (auto c : seq.codes) EXPECT_LT(c, bio::kK);
  }
}

TEST(Builder, RecoversConservedColumns) {
  // Five aligned sequences, perfectly conserved except one gappy column.
  std::vector<std::string> aln = {
      "ACDEF", "ACDEF", "AC-EF", "ACDEF", "ACDEF",
  };
  auto hmm = build_from_alignment(aln, "toy");
  EXPECT_EQ(hmm.length(), 5);
  // Column 1 is all-A: A must dominate the match distribution.
  int a_code = bio::digitize('A');
  for (int a = 0; a < bio::kK; ++a) {
    if (a != a_code) {
      EXPECT_GT(hmm.mat(1, a_code), hmm.mat(1, a));
    }
  }
  EXPECT_NO_THROW(hmm.validate());
}

TEST(Builder, InsertColumnsBecomeInsertStates) {
  // The lowercase-ish minority column (only 1/4 residues) is an insert.
  std::vector<std::string> aln = {
      "AC-DF", "AC-DF", "ACWDF", "AC-DF",
  };
  auto hmm = build_from_alignment(aln, "ins");
  EXPECT_EQ(hmm.length(), 4);  // the W column fails the 50% threshold
}

TEST(Builder, RaggedAlignmentThrows) {
  std::vector<std::string> aln = {"ACD", "AC"};
  EXPECT_THROW(build_from_alignment(aln, "bad"), Error);
}

TEST(Builder, BuiltModelScoresItsTrainingSequences) {
  std::vector<std::string> aln = {
      "MKVLATGCEW", "MKVLATGCEW", "MKVLSTGCEW", "MKVLATGAEW",
  };
  auto hmm = build_from_alignment(aln, "train");
  SearchProfile prof(hmm, AlignMode::kLocalMultihit, 10);
  auto train = bio::digitize("MKVLATGCEW");
  auto junk = bio::digitize("GGGGGGGGGG");
  float self = cpu::generic_viterbi(prof, train.data(), train.size());
  float other = cpu::generic_viterbi(prof, junk.data(), junk.size());
  EXPECT_GT(self, other + 3.0f);
}

}  // namespace
