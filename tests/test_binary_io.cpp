// Binary profile serialization: lossless round trip, hostile inputs.
#include <gtest/gtest.h>

#include <sstream>

#include "hmm/binary_io.hpp"
#include "hmm/generator.hpp"
#include "util/error.hpp"

namespace {

using namespace finehmm;
using namespace finehmm::hmm;

TEST(BinaryIo, RoundTripIsBitExact) {
  auto model = paper_model(77);
  stats::ModelStats st;
  st.ssv = {-5.5, stats::kLambdaLog2};
  st.msv = {-6.25, stats::kLambdaLog2};
  st.vit = {-7.75, stats::kLambdaLog2};
  st.fwd = {-2.125, stats::kLambdaLog2};

  std::ostringstream out(std::ios::binary);
  write_hmm_binary(out, model, &st);
  std::istringstream in(out.str(), std::ios::binary);
  std::optional<stats::ModelStats> back_stats;
  auto back = read_hmm_binary(in, &back_stats);

  ASSERT_EQ(back.length(), model.length());
  EXPECT_EQ(back.name(), model.name());
  EXPECT_EQ(back.description(), model.description());
  for (int k = 1; k <= model.length(); ++k)
    for (int a = 0; a < bio::kK; ++a)
      EXPECT_EQ(back.mat(k, a), model.mat(k, a)) << k << "," << a;
  for (int k = 0; k <= model.length(); ++k)
    for (int t = 0; t < kNTransitions; ++t)
      EXPECT_EQ(back.tr(k, static_cast<Plan7Transition>(t)),
                model.tr(k, static_cast<Plan7Transition>(t)));
  ASSERT_TRUE(back_stats.has_value());
  EXPECT_EQ(back_stats->msv.mu, st.msv.mu);  // doubles, bit-exact
  EXPECT_EQ(back_stats->fwd.mu, st.fwd.mu);
  EXPECT_EQ(back_stats->ssv.mu, st.ssv.mu);
}

TEST(BinaryIo, WithoutStatsYieldsNullopt) {
  auto model = paper_model(10);
  std::ostringstream out(std::ios::binary);
  write_hmm_binary(out, model);
  std::istringstream in(out.str(), std::ios::binary);
  std::optional<stats::ModelStats> st;
  read_hmm_binary(in, &st);
  EXPECT_FALSE(st.has_value());
}

TEST(BinaryIo, RejectsBadMagic) {
  std::istringstream in("NOPE....................", std::ios::binary);
  EXPECT_THROW(read_hmm_binary(in), Error);
}

TEST(BinaryIo, RejectsTruncationAtEveryQuarter) {
  auto model = paper_model(25);
  std::ostringstream out(std::ios::binary);
  write_hmm_binary(out, model);
  std::string bytes = out.str();
  for (std::size_t frac = 1; frac <= 3; ++frac) {
    std::istringstream in(bytes.substr(0, bytes.size() * frac / 4),
                          std::ios::binary);
    EXPECT_THROW(read_hmm_binary(in), Error) << "frac " << frac;
  }
}

TEST(BinaryIo, RejectsImplausibleLengths) {
  auto model = paper_model(5);
  std::ostringstream out(std::ios::binary);
  write_hmm_binary(out, model);
  std::string bytes = out.str();
  // Corrupt the M field (right after magic+version+two strings).
  std::size_t name_len = model.name().size();
  std::size_t pos = 4 + 4 + 4 + name_len + 4 + model.description().size();
  bytes[pos + 3] = '\x7f';  // gigantic M
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(read_hmm_binary(in), Error);
}

TEST(BinaryIo, BinaryPreservesScoresAsciiOnlyApproximates) {
  // ASCII rounds to 5 decimals; binary must be exact.
  auto model = paper_model(30);
  std::ostringstream bin(std::ios::binary);
  write_hmm_binary(bin, model);
  std::istringstream bin_in(bin.str(), std::ios::binary);
  auto from_bin = read_hmm_binary(bin_in);
  int exact = 0, total = 0;
  for (int k = 1; k <= 30; ++k)
    for (int a = 0; a < bio::kK; ++a) {
      ++total;
      if (from_bin.mat(k, a) == model.mat(k, a)) ++exact;
    }
  EXPECT_EQ(exact, total);
}

}  // namespace
