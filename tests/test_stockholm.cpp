// Stockholm format parsing and RF-guided model building.
#include <gtest/gtest.h>

#include <sstream>

#include "bio/stockholm.hpp"
#include "hmm/builder.hpp"
#include "util/error.hpp"

namespace {

using namespace finehmm;
using namespace finehmm::bio;

TEST(Stockholm, ParsesSimpleAlignment) {
  std::istringstream in(
      "# STOCKHOLM 1.0\n"
      "#=GF ID demo_fam\n"
      "seq1  ACDE-F\n"
      "seq2  ACDEGF\n"
      "#=GC RF   xxxx.x\n"
      "//\n");
  auto aln = read_stockholm(in);
  EXPECT_EQ(aln.id, "demo_fam");
  ASSERT_EQ(aln.rows.size(), 2u);
  EXPECT_EQ(aln.rows[0], "ACDE-F");
  ASSERT_TRUE(aln.rf.has_value());
  EXPECT_EQ(*aln.rf, "xxxx.x");
}

TEST(Stockholm, HandlesInterleavedBlocks) {
  std::istringstream in(
      "# STOCKHOLM 1.0\n"
      "seq1  ACD\n"
      "seq2  ACD\n"
      "\n"
      "seq1  EFG\n"
      "seq2  E-G\n"
      "//\n");
  auto aln = read_stockholm(in);
  ASSERT_EQ(aln.rows.size(), 2u);
  EXPECT_EQ(aln.rows[0], "ACDEFG");
  EXPECT_EQ(aln.rows[1], "ACDE-G");
}

TEST(Stockholm, RoundTrips) {
  StockholmAlignment aln;
  aln.id = "rt";
  aln.names = {"a", "longer_name"};
  aln.rows = {"AC-DE", "ACWDE"};
  aln.rf = "xx.xx";
  std::ostringstream out;
  write_stockholm(out, aln);
  std::istringstream in(out.str());
  auto back = read_stockholm(in);
  EXPECT_EQ(back.id, aln.id);
  EXPECT_EQ(back.rows, aln.rows);
  EXPECT_EQ(back.names, aln.names);
  ASSERT_TRUE(back.rf.has_value());
  EXPECT_EQ(*back.rf, *aln.rf);
}

TEST(Stockholm, RejectsMalformedInputs) {
  {
    std::istringstream in("seq1 ACDE\n//\n");  // missing header
    EXPECT_THROW(read_stockholm(in), Error);
  }
  {
    std::istringstream in("# STOCKHOLM 1.0\nseq1 ACDE\n");  // missing //
    EXPECT_THROW(read_stockholm(in), Error);
  }
  {
    std::istringstream in(
        "# STOCKHOLM 1.0\nseq1 ACDE\nseq2 AC\n//\n");  // ragged
    EXPECT_THROW(read_stockholm(in), Error);
  }
  {
    std::istringstream in(
        "# STOCKHOLM 1.0\nseq1 ACDE\n#=GC RF xx\n//\n");  // RF width
    EXPECT_THROW(read_stockholm(in), Error);
  }
}

TEST(Stockholm, RfLineDrivesMatchColumns) {
  // Column 3 (W-insert) is marked as insert by RF even though every
  // sequence has a residue there — the threshold rule would call it a
  // match column, RF must override.
  std::istringstream in(
      "# STOCKHOLM 1.0\n"
      "#=GF ID rf_demo\n"
      "s1  ACWDE\n"
      "s2  ACWDE\n"
      "s3  ACWDE\n"
      "#=GC RF  xx.xx\n"
      "//\n");
  auto aln = read_stockholm(in);
  auto with_rf = hmm::build_from_stockholm(aln);
  EXPECT_EQ(with_rf.length(), 4);
  EXPECT_EQ(with_rf.name(), "rf_demo");

  aln.rf.reset();
  auto without_rf = hmm::build_from_stockholm(aln);
  EXPECT_EQ(without_rf.length(), 5);
}

}  // namespace
