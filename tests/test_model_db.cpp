// Model library (pressed database) round trip and lazy loading.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "hmm/generator.hpp"
#include "hmm/model_db.hpp"
#include "util/error.hpp"

namespace {

using namespace finehmm;
using namespace finehmm::hmm;

std::vector<ModelEntry> demo_entries(int n) {
  std::vector<ModelEntry> entries;
  for (int i = 0; i < n; ++i) {
    ModelEntry e;
    RandomHmmSpec spec;
    spec.length = 10 + i * 7;
    spec.seed = 2000 + i;
    e.model = generate_hmm(spec);
    e.model.set_name("LIB" + std::to_string(i));
    if (i % 2 == 0) {
      stats::ModelStats st;
      st.msv = {-5.0 - i, stats::kLambdaLog2};
      st.vit = {-6.0 - i, stats::kLambdaLog2};
      st.fwd = {-2.0 - i, stats::kLambdaLog2};
      e.model_stats = st;
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

TEST(ModelDb, StreamRoundTrip) {
  auto entries = demo_entries(5);
  std::ostringstream out(std::ios::binary);
  write_model_db(out, entries);
  std::istringstream in(out.str(), std::ios::binary);
  auto back = read_model_db(in);
  ASSERT_EQ(back.size(), entries.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].model.name(), entries[i].model.name());
    EXPECT_EQ(back[i].model.length(), entries[i].model.length());
    EXPECT_EQ(back[i].model_stats.has_value(),
              entries[i].model_stats.has_value());
    if (back[i].model_stats) {
      EXPECT_EQ(back[i].model_stats->msv.mu, entries[i].model_stats->msv.mu);
    }
    // Spot-check a probability for bit exactness.
    EXPECT_EQ(back[i].model.mat(1, 3), entries[i].model.mat(1, 3));
  }
}

TEST(ModelDb, LazyReaderLoadsByIndexInAnyOrder) {
  auto entries = demo_entries(4);
  std::string path = "/tmp/finehmm_test_lib.fhpdb";
  write_model_db_file(path, entries);
  ModelDbReader reader(path);
  ASSERT_EQ(reader.size(), 4u);
  for (std::size_t i : {2u, 0u, 3u, 1u, 2u}) {
    auto e = reader.load(i);
    EXPECT_EQ(e.model.name(), entries[i].model.name());
    EXPECT_EQ(e.model.length(), entries[i].model.length());
  }
  EXPECT_THROW(reader.load(4), Error);
  std::remove(path.c_str());
}

TEST(ModelDb, RejectsGarbageAndTruncation) {
  {
    std::istringstream in("garbage data here", std::ios::binary);
    EXPECT_THROW(read_model_db(in), Error);
  }
  auto entries = demo_entries(3);
  std::ostringstream out(std::ios::binary);
  write_model_db(out, entries);
  std::string bytes = out.str();
  std::istringstream in(bytes.substr(0, bytes.size() / 2), std::ios::binary);
  EXPECT_THROW(read_model_db(in), Error);
}

TEST(ModelDb, RefusesEmptyLibrary) {
  std::ostringstream out(std::ios::binary);
  EXPECT_THROW(write_model_db(out, {}), Error);
}

}  // namespace
