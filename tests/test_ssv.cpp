// SSV filter (extension): scalar == striped == warp kernel, and the
// structural property SSV <= MSV (removing the J state can only lose).
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "cpu/msv_scalar.hpp"
#include "cpu/ssv.hpp"
#include "gpu/search.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"

namespace {

using namespace finehmm;

struct SsvFixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  profile::MsvProfile msv;

  explicit SsvFixture(int M, std::uint64_t seed = 13)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          return hmm::generate_hmm(spec);
        }()),
        prof(model, hmm::AlignMode::kLocalMultihit, 400),
        msv(prof) {}
};

class SsvEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SsvEquivalence, StripedMatchesScalar) {
  SsvFixture fx(GetParam());
  Pcg32 rng(7);
  for (int rep = 0; rep < 15; ++rep) {
    std::size_t L = 1 + rng.below(500);
    auto seq = bio::random_sequence(L, rng);
    auto a = cpu::ssv_scalar(fx.msv, seq.codes.data(), L);
    auto b = cpu::ssv_striped(fx.msv, seq.codes.data(), L);
    EXPECT_EQ(a.overflowed, b.overflowed);
    EXPECT_FLOAT_EQ(a.score_nats, b.score_nats)
        << "M=" << GetParam() << " L=" << L;
  }
}

TEST_P(SsvEquivalence, SsvNeverExceedsMsv) {
  SsvFixture fx(GetParam());
  Pcg32 rng(9);
  for (int rep = 0; rep < 15; ++rep) {
    auto seq = rep % 3 == 0 ? hmm::sample_homolog(fx.model, rng)
                            : bio::random_sequence(30 + rng.below(400), rng);
    auto ssv = cpu::ssv_scalar(fx.msv, seq.codes.data(), seq.length());
    auto msv = cpu::msv_scalar(fx.msv, seq.codes.data(), seq.length());
    if (ssv.overflowed || msv.overflowed) {
      // An overflowing SSV implies an overflowing MSV.
      EXPECT_TRUE(!ssv.overflowed || msv.overflowed);
      continue;
    }
    // Byte rounding of tec/tjb is shared, so the inequality is exact.
    EXPECT_LE(ssv.score_nats, msv.score_nats + 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(ModelSizes, SsvEquivalence,
                         ::testing::Values(5, 16, 31, 33, 100, 200),
                         ::testing::PrintToStringParamName());

TEST(Ssv, WarpKernelMatchesScalar) {
  SsvFixture fx(96);
  Pcg32 rng(17);
  bio::SequenceDatabase db;
  for (int i = 0; i < 30; ++i) {
    if (i % 3 == 0)
      db.add(hmm::sample_homolog(fx.model, rng));
    else
      db.add(bio::random_sequence(10 + rng.below(300), rng));
  }
  bio::PackedDatabase packed(db);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  for (auto placement :
       {gpu::ParamPlacement::kShared, gpu::ParamPlacement::kGlobal}) {
    auto run = search.run_ssv(fx.msv, packed, placement);
    for (std::size_t s = 0; s < db.size(); ++s) {
      auto ref = cpu::ssv_scalar(fx.msv, db[s].codes.data(), db[s].length());
      EXPECT_EQ(run.overflow[s] != 0, ref.overflowed) << "seq " << s;
      EXPECT_FLOAT_EQ(run.scores[s], ref.score_nats) << "seq " << s;
    }
  }
}

TEST(Ssv, SingleSegmentSequencesScoreLikeMsv) {
  // A sequence with exactly one strong segment: MSV's J adds nothing, so
  // the two scores coincide up to the shared byte quantization.
  SsvFixture fx(64);
  Pcg32 rng(23);
  hmm::SampleOptions opts;
  opts.fragment_prob = 0.0;  // one full-length traversal
  auto seq = hmm::sample_homolog(fx.model, rng, opts);
  auto ssv = cpu::ssv_scalar(fx.msv, seq.codes.data(), seq.length());
  auto msv = cpu::msv_scalar(fx.msv, seq.codes.data(), seq.length());
  if (!ssv.overflowed && !msv.overflowed) {
    EXPECT_NEAR(ssv.score_nats, msv.score_nats, 0.5f);
  }
}

}  // namespace
