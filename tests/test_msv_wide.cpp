// Width-templated striped MSV: every lane count must reproduce the
// scalar reference byte-exactly.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "cpu/msv_scalar.hpp"
#include "cpu/msv_wide.hpp"
#include "hmm/generator.hpp"
#include "hmm/sampler.hpp"

namespace {

using namespace finehmm;

template <int N>
void check_width(int M, std::uint64_t seed) {
  auto model = hmm::paper_model(M);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  cpu::WideMsvStripes<N> stripes(msv);
  Pcg32 rng(seed);
  for (int rep = 0; rep < 12; ++rep) {
    auto seq = rep % 3 == 0 ? hmm::sample_homolog(model, rng)
                            : bio::random_sequence(1 + rng.below(400), rng);
    auto ref = cpu::msv_scalar(msv, seq.codes.data(), seq.length());
    auto wide =
        cpu::msv_striped_wide<N>(msv, stripes, seq.codes.data(), seq.length());
    EXPECT_EQ(wide.overflowed, ref.overflowed)
        << "N=" << N << " M=" << M << " rep=" << rep;
    EXPECT_FLOAT_EQ(wide.score_nats, ref.score_nats)
        << "N=" << N << " M=" << M << " rep=" << rep;
  }
}

class WideMsv : public ::testing::TestWithParam<int> {};

TEST_P(WideMsv, SseWidthMatchesScalar) { check_width<16>(GetParam(), 3); }
TEST_P(WideMsv, Avx2WidthMatchesScalar) { check_width<32>(GetParam(), 4); }
TEST_P(WideMsv, Avx512WidthMatchesScalar) { check_width<64>(GetParam(), 5); }
TEST_P(WideMsv, TinyWidthMatchesScalar) { check_width<4>(GetParam(), 6); }

INSTANTIATE_TEST_SUITE_P(Sizes, WideMsv,
                         ::testing::Values(1, 15, 16, 17, 63, 64, 65, 200),
                         ::testing::PrintToStringParamName());

TEST(WideMsv, AllWidthsAgreeWithEachOther) {
  auto model = hmm::paper_model(100);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  cpu::WideMsvStripes<16> s16(msv);
  cpu::WideMsvStripes<32> s32(msv);
  cpu::WideMsvStripes<64> s64(msv);
  Pcg32 rng(7);
  auto seq = bio::random_sequence(333, rng);
  auto a = cpu::msv_striped_wide<16>(msv, s16, seq.codes.data(), 333);
  auto b = cpu::msv_striped_wide<32>(msv, s32, seq.codes.data(), 333);
  auto c = cpu::msv_striped_wide<64>(msv, s64, seq.codes.data(), 333);
  EXPECT_FLOAT_EQ(a.score_nats, b.score_nats);
  EXPECT_FLOAT_EQ(b.score_nats, c.score_nats);
}

}  // namespace
