// The analytic performance model: sanity and monotonicity properties the
// paper's figures rely on.
#include <gtest/gtest.h>

#include "bio/synthetic.hpp"
#include "gpu/search.hpp"
#include "hmm/generator.hpp"
#include "perf/cost_model.hpp"
#include "util/error.hpp"

namespace {

using namespace finehmm;
using perf::CostModelParams;
using perf::estimate_cpu_time;
using perf::estimate_gpu_time;

simt::Occupancy occ_at(double fraction, const simt::DeviceSpec& dev) {
  simt::Occupancy occ;
  occ.warps_per_sm =
      static_cast<int>(fraction * dev.max_warps_per_sm + 0.5);
  occ.blocks_per_sm = 1;
  occ.fraction = fraction;
  return occ;
}

TEST(CostModel, TimeScalesLinearlyInWork) {
  auto dev = simt::DeviceSpec::tesla_k40();
  simt::PerfCounters c;
  c.alu = 1'000'000;
  c.smem_cycles = 500'000;
  c.cells = 1'000'000;
  auto t1 = estimate_gpu_time(dev, c, occ_at(1.0, dev), 8);
  simt::PerfCounters c2 = c;
  c2.merge(c);
  auto t2 = estimate_gpu_time(dev, c2, occ_at(1.0, dev), 8);
  EXPECT_NEAR(t2.total_s, 2.0 * t1.total_s, 1e-12);
}

TEST(CostModel, LowOccupancyIsSlower) {
  auto dev = simt::DeviceSpec::tesla_k40();
  simt::PerfCounters c;
  c.alu = 1'000'000;
  c.smem_cycles = 1'000'000;
  auto full = estimate_gpu_time(dev, c, occ_at(1.0, dev), 8);
  auto low = estimate_gpu_time(dev, c, occ_at(0.1, dev), 8);
  EXPECT_GT(low.total_s, 2.0 * full.total_s);
}

TEST(CostModel, SyncsCostTime) {
  auto dev = simt::DeviceSpec::tesla_k40();
  simt::PerfCounters c;
  c.alu = 1'000'000;
  simt::PerfCounters with_syncs = c;
  with_syncs.syncs = 100'000;
  auto a = estimate_gpu_time(dev, c, occ_at(1.0, dev), 8);
  auto b = estimate_gpu_time(dev, with_syncs, occ_at(1.0, dev), 8);
  EXPECT_GT(b.total_s, a.total_s);
}

TEST(CostModel, MemoryBoundWhenTrafficDominates) {
  auto dev = simt::DeviceSpec::tesla_k40();
  simt::PerfCounters c;
  c.alu = 1000;
  c.gmem_bytes = 100ull * 1000 * 1000 * 1000;  // 100 GB
  auto t = estimate_gpu_time(dev, c, occ_at(1.0, dev), 8);
  EXPECT_GT(t.memory_s, t.compute_s);
  EXPECT_DOUBLE_EQ(t.total_s, t.memory_s);
}

TEST(CostModel, CpuBaselineMatchesClosedForm) {
  CostModelParams p;
  double cells = 1e9;
  double t = estimate_cpu_time(perf::CpuStage::kMsv, cells, p);
  EXPECT_NEAR(t, cells * p.cpu_cycles_per_cell_msv / (4 * 3.4e9), 1e-12);
  EXPECT_GT(estimate_cpu_time(perf::CpuStage::kViterbi, cells, p), t);
}

TEST(CostModel, ExtrapolateScalesTimes) {
  perf::TimeEstimate e;
  e.compute_s = 1.0;
  e.memory_s = 0.5;
  e.total_s = 1.0;
  auto x = perf::extrapolate(e, 10.0);
  EXPECT_DOUBLE_EQ(x.total_s, 10.0);
  EXPECT_DOUBLE_EQ(x.memory_s, 5.0);
}

TEST(CostModel, EmptyCountersYieldZeroTime) {
  auto dev = simt::DeviceSpec::tesla_k40();
  simt::PerfCounters none;
  auto t = estimate_gpu_time(dev, none, occ_at(1.0, dev), 4);
  EXPECT_EQ(t.total_s, 0.0);
  EXPECT_EQ(t.gcells_per_s, 0.0);
}

TEST(CostModel, ZeroOccupancyLaunchIsRejected) {
  auto dev = simt::DeviceSpec::tesla_k40();
  simt::PerfCounters c;
  c.alu = 100;
  simt::Occupancy occ;  // zero warps
  EXPECT_THROW(estimate_gpu_time(dev, c, occ, 4), Error);
}

TEST(CostModel, DeviceSpecsAreInternallyConsistent) {
  for (const auto& dev :
       {simt::DeviceSpec::tesla_k40(), simt::DeviceSpec::gtx580(),
        simt::DeviceSpec::gtx980()}) {
    EXPECT_EQ(dev.max_threads_per_sm, dev.max_warps_per_sm * 32) << dev.name;
    EXPECT_GT(dev.sm_count, 0);
    EXPECT_GT(dev.clock_ghz, 0.1);
    EXPECT_GE(dev.shared_mem_per_sm, dev.shared_mem_per_block);
    EXPECT_GT(dev.issue_width(), 0.0);
  }
}

// End-to-end sanity: on a small real workload, the modeled K40 beats the
// modeled quad-core CPU for MSV by a factor in the paper's ballpark.
TEST(CostModel, MsvSpeedupInPaperBallpark) {
  auto model = hmm::paper_model(400);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  auto spec = bio::SyntheticDbSpec::envnr_like(0.00005);  // ~327 seqs
  auto db = bio::generate_database(spec);
  bio::PackedDatabase packed(db);

  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  auto run = search.run_msv(msv, packed, gpu::ParamPlacement::kShared);
  auto gpu_t = estimate_gpu_time(search.device(), run.counters, run.plan.occ,
                                 run.plan.cfg.warps_per_block);
  double cpu_t = estimate_cpu_time(perf::CpuStage::kMsv,
                                   static_cast<double>(run.counters.cells));
  double speedup = cpu_t / gpu_t.total_s;
  // Paper Fig. 9: MSV stage speedups are between ~2x and ~5.4x.
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 9.0);
}

}  // namespace
