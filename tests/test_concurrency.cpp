// Concurrency stress tests, written for the sanitizer presets.
//
// Under the tsan preset these drive the lock-free-adjacent machinery —
// BoundedMpmcQueue under full producer/consumer contention, concurrent
// obs::Recorder span emission, the thread pool's chunked cursor — hard
// enough that any missing happens-before edge shows up as a data-race
// report.  Under the asan/ubsan presets (FINEHMM_CHECKS on) the same
// runs exercise the queue's ticket-FIFO and accounting invariants.
// They also pass (quickly) in plain builds, where they still verify the
// functional contracts: every item delivered exactly once, dense stable
// worker ids, deterministic post-join merges.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/log.hpp"
#include "obs/recorder.hpp"
#include "util/mpmc_queue.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace finehmm;

// ------------------------------------------------------- BoundedMpmcQueue

// Encode (producer, sequence) into one queue item so consumers can check
// per-producer FIFO order without any side channel.
constexpr std::uint64_t kSeqBits = 32;
std::uint64_t encode(std::uint64_t producer, std::uint64_t seq) {
  return (producer << kSeqBits) | seq;
}

TEST(MpmcQueueStress, EveryItemDeliveredExactlyOnceInFifoOrder) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::uint64_t kItems = 1500;  // per producer
  BoundedMpmcQueue<std::uint64_t> queue(32);

  std::atomic<std::size_t> producers_done{0};
  std::vector<std::atomic<int>> delivered(kProducers * kItems);
  for (auto& d : delivered) d.store(0, std::memory_order_relaxed);

  std::vector<std::thread> crew;
  for (std::size_t p = 0; p < kProducers; ++p) {
    crew.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        while (!queue.try_push(encode(p, i))) std::this_thread::yield();
      }
      producers_done.fetch_add(1, std::memory_order_release);
    });
  }
  // Each consumer records the last sequence number it saw per producer:
  // the queue is globally FIFO, so the subsequence any single consumer
  // observes from one producer must be strictly increasing.
  std::vector<std::vector<std::int64_t>> last_seen(
      kConsumers, std::vector<std::int64_t>(kProducers, -1));
  std::atomic<bool> order_ok{true};
  for (std::size_t c = 0; c < kConsumers; ++c) {
    crew.emplace_back([&, c] {
      std::uint64_t item = 0;
      while (true) {
        if (queue.try_pop(item)) {
          const std::size_t p = item >> kSeqBits;
          const auto seq =
              static_cast<std::int64_t>(item & ((1ull << kSeqBits) - 1));
          if (seq <= last_seen[c][p]) {
            order_ok.store(false, std::memory_order_relaxed);
          }
          last_seen[c][p] = seq;
          delivered[p * kItems + static_cast<std::size_t>(seq)].fetch_add(
              1, std::memory_order_relaxed);
        } else if (producers_done.load(std::memory_order_acquire) ==
                       kProducers &&
                   queue.empty()) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : crew) t.join();

  EXPECT_TRUE(order_ok.load());
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    ASSERT_EQ(delivered[i].load(), 1) << "item " << i;
  }
  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushes, kProducers * kItems);
  EXPECT_EQ(stats.pops, kProducers * kItems);
  EXPECT_LE(stats.max_depth, queue.capacity());
  EXPECT_TRUE(queue.empty());
}

TEST(MpmcQueueStress, HelpFirstBackpressureNeverLosesWork) {
  // The overlapped engine's discipline: when the ring is full the
  // producer processes the item itself instead of blocking.  With a
  // deliberately tiny ring this path fires constantly; nothing may be
  // lost or processed twice.
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kItems = 2000;
  BoundedMpmcQueue<std::uint64_t> queue(4);

  std::vector<std::atomic<int>> processed(kProducers * kItems);
  for (auto& d : processed) d.store(0, std::memory_order_relaxed);
  std::atomic<std::size_t> producers_done{0};
  std::atomic<std::uint64_t> helped{0};

  std::vector<std::thread> crew;
  for (std::size_t p = 0; p < kProducers; ++p) {
    crew.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        const std::uint64_t item = encode(p, i);
        if (!queue.try_push(item)) {
          processed[p * kItems + i].fetch_add(1, std::memory_order_relaxed);
          helped.fetch_add(1, std::memory_order_relaxed);
        }
      }
      producers_done.fetch_add(1, std::memory_order_release);
    });
  }
  for (std::size_t c = 0; c < 2; ++c) {
    crew.emplace_back([&] {
      std::uint64_t item = 0;
      while (true) {
        if (queue.try_pop(item)) {
          const std::size_t p = item >> kSeqBits;
          const std::size_t seq = item & ((1ull << kSeqBits) - 1);
          processed[p * kItems + seq].fetch_add(1, std::memory_order_relaxed);
        } else if (producers_done.load(std::memory_order_acquire) ==
                       kProducers &&
                   queue.empty()) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : crew) t.join();

  for (std::size_t i = 0; i < processed.size(); ++i) {
    ASSERT_EQ(processed[i].load(), 1) << "item " << i;
  }
  const auto stats = queue.stats();
  EXPECT_EQ(stats.pops, stats.pushes);
  EXPECT_EQ(stats.pushes + helped.load(), kProducers * kItems);
  EXPECT_EQ(stats.push_failures, helped.load());
}

// The daemon-facing half of the queue contract (docs/server.md): close()
// plus the timed blocking pop.  These are the semantics the search
// server's drain leans on — a closed queue still hands out everything it
// accepted, and only then reports kClosed.

TEST(MpmcQueueLifecycle, CloseRejectsPushesButDeliversAcceptedItems) {
  BoundedMpmcQueue<int> queue(8);
  ASSERT_TRUE(queue.try_push(1));
  ASSERT_TRUE(queue.try_push(2));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.try_push(3)) << "closed queue must reject pushes";

  // Drain-then-stop as one loop: items first, kClosed only when empty.
  int out = 0;
  EXPECT_EQ(queue.pop_wait(out, std::chrono::milliseconds(100)),
            PopStatus::kItem);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(queue.pop_wait(out, std::chrono::milliseconds(100)),
            PopStatus::kItem);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(queue.pop_wait(out, std::chrono::milliseconds(100)),
            PopStatus::kClosed);
  // kClosed is terminal and idempotent.
  EXPECT_EQ(queue.pop_wait(out, std::chrono::milliseconds(1)),
            PopStatus::kClosed);
  queue.close();  // idempotent
  EXPECT_EQ(queue.stats().push_failures, 1u);
}

TEST(MpmcQueueLifecycle, PopWaitTimesOutOnAnOpenEmptyQueue) {
  BoundedMpmcQueue<int> queue(4);
  int out = 0;
  EXPECT_EQ(queue.pop_wait(out, std::chrono::milliseconds(5)),
            PopStatus::kTimeout);
  // A push after the timeout is delivered by the next wait.
  ASSERT_TRUE(queue.try_push(7));
  EXPECT_EQ(queue.pop_wait(out, std::chrono::milliseconds(5)),
            PopStatus::kItem);
  EXPECT_EQ(out, 7);
}

TEST(MpmcQueueLifecycle, CloseWakesEveryBlockedConsumer) {
  BoundedMpmcQueue<int> queue(4);
  constexpr std::size_t kConsumers = 3;
  std::atomic<std::size_t> saw_closed{0};
  std::vector<std::thread> crew;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    crew.emplace_back([&] {
      int out = 0;
      // Far longer than the test: only close() can end these waits.
      if (queue.pop_wait(out, std::chrono::milliseconds(60000)) ==
          PopStatus::kClosed)
        saw_closed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Give the consumers a moment to block, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  for (auto& t : crew) t.join();
  EXPECT_EQ(saw_closed.load(), kConsumers);
}

TEST(MpmcQueueLifecycle, DrainUnderContentionDeliversEverythingThenCloses) {
  // The server's exact drain shape: producers race try_push against a
  // closing queue; consumers pop_wait until kClosed.  Every ACCEPTED
  // item must be delivered exactly once — acceptance is the try_push
  // return value, nothing else.
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kConsumers = 3;
  constexpr std::uint64_t kItems = 800;
  BoundedMpmcQueue<std::uint64_t> queue(16);

  std::vector<std::atomic<int>> delivered(kProducers * kItems);
  for (auto& d : delivered) d.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> accepted{0};

  std::vector<std::thread> crew;
  for (std::size_t p = 0; p < kProducers; ++p) {
    crew.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kItems; ++i) {
        if (queue.try_push(encode(p, i)))
          accepted.fetch_add(1, std::memory_order_relaxed);
        if (i % 64 == 0) std::this_thread::yield();
      }
    });
  }
  std::atomic<std::uint64_t> popped{0};
  for (std::size_t c = 0; c < kConsumers; ++c) {
    crew.emplace_back([&] {
      std::uint64_t item = 0;
      PopStatus st;
      while ((st = queue.pop_wait(item, std::chrono::milliseconds(20))) !=
             PopStatus::kClosed) {
        if (st != PopStatus::kItem) continue;  // kTimeout: producers slow
        const std::size_t p = item >> kSeqBits;
        const std::size_t seq = item & ((1ull << kSeqBits) - 1);
        delivered[p * kItems + seq].fetch_add(1, std::memory_order_relaxed);
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Close mid-stream: some pushes land before, some are rejected after.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.close();
  for (auto& t : crew) t.join();

  EXPECT_EQ(popped.load(), accepted.load());
  std::uint64_t delivered_total = 0;
  for (auto& d : delivered) {
    ASSERT_LE(d.load(), 1);
    delivered_total += static_cast<std::uint64_t>(d.load());
  }
  EXPECT_EQ(delivered_total, accepted.load());
  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushes, accepted.load());
  EXPECT_EQ(stats.pops, accepted.load());
}

// --------------------------------------------------------- obs::Recorder

TEST(RecorderStress, ConcurrentSpanEmissionMergesDeterministically) {
  // Every worker hammers its own ThreadLog while the others do the same;
  // the Recorder's contract (distinct workers touch distinct logs, merges
  // only after the join) must hold without any locking on the hot path.
  obs::RecorderConfig cfg;
  cfg.tracing = true;
  obs::Recorder rec(cfg);
  if (!rec.enabled()) GTEST_SKIP() << "FINEHMM_OBS=0 set in environment";

  ThreadPool pool(4);
  const std::size_t n = pool.workers();
  constexpr std::uint64_t kSpansPerWorker = 200;
  rec.reserve_threads(n);

  pool.run_workers(n, [&](std::size_t w) {
    obs::ThreadLog* log = rec.log(w);
    ASSERT_NE(log, nullptr);
    for (std::uint64_t i = 0; i < kSpansPerWorker; ++i) {
      {
        OBS_SPAN(&rec, w, "stress", obs::Stage::kMsv);
      }
      log->add(obs::Counter::kSequencesScored);
      log->add_stage(obs::Stage::kVit, 1e-6, /*items=*/1);
    }
  });

  // Post-join merges see every worker's writes (run_workers' join is the
  // happens-before edge) and are deterministic sums.
  EXPECT_EQ(rec.counter(obs::Counter::kSequencesScored), n * kSpansPerWorker);
  EXPECT_EQ(rec.stage_items(obs::Stage::kVit), n * kSpansPerWorker);
  EXPECT_NEAR(rec.stage_seconds(obs::Stage::kVit),
              static_cast<double>(n * kSpansPerWorker) * 1e-6, 1e-9);
  const auto events = rec.merged_events();
  EXPECT_EQ(events.size() + rec.counter(obs::Counter::kSpansDropped),
            n * kSpansPerWorker);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
  }
}

// ------------------------------------------------- ConcurrentHistogram

TEST(HistogramStress, ConcurrentRecordersLoseNoSamples) {
  // The daemon's latency histograms take relaxed atomic adds from every
  // connection and scheduler thread while /metrics snapshots them.
  // Under TSan this proves the recording and snapshot paths share no
  // unsynchronized state; in plain builds it proves no sample is lost
  // and the snapshot's totals are internally consistent.
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  obs::ConcurrentHistogram hist;

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    // Concurrent snapshots: each must be well-formed (count == sum of
    // buckets, quantiles monotone) even mid-storm.
    while (!done.load(std::memory_order_acquire)) {
      const obs::Histogram snap = hist.snapshot();
      std::uint64_t bucket_sum = 0;
      for (std::uint64_t b = 0;
           b < obs::HistogramBuckets::kBucketCount; ++b)
        bucket_sum += snap.bucket(b);
      ASSERT_EQ(snap.count(), bucket_sum);
      ASSERT_LE(snap.quantile(0.5), snap.quantile(0.99));
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> recorders;
  for (std::size_t t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        hist.record(t * kPerThread + i);
    });
  }
  for (auto& th : recorders) th.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  // Every sample landed: the final snapshot is exact once quiesced.
  const obs::Histogram snap = hist.snapshot();
  EXPECT_EQ(snap.count(), kThreads * kPerThread);
  std::uint64_t expect_sum = 0;
  for (std::uint64_t v = 0; v < kThreads * kPerThread; ++v) expect_sum += v;
  EXPECT_EQ(snap.sum(), expect_sum);
}

TEST(HistogramStress, RateLimitedLoggingSiteUnderContention) {
  // Many threads hitting one LogRateLimit site: the CAS loop must not
  // race (TSan) and the accounting must balance — every call either
  // allowed or counted as suppressed exactly once.
  constexpr std::size_t kThreads = 8;
  constexpr int kCallsPerThread = 5000;
  obs::LogRateLimit limit(4);

  std::atomic<std::uint64_t> allowed{0}, reported{0};
  std::vector<std::thread> crew;
  for (std::size_t t = 0; t < kThreads; ++t) {
    crew.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        std::uint64_t suppressed = 0;
        if (limit.allow(&suppressed)) {
          allowed.fetch_add(1, std::memory_order_relaxed);
          reported.fetch_add(suppressed, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : crew) th.join();

  // Drain the residual suppressed count by waiting for the window to
  // re-open once, then check the books.  Failed polls count as
  // suppressed too, so tally them.
  std::uint64_t tail = 0;
  std::uint64_t polls = 1;
  while (!limit.allow(&tail)) {
    ++polls;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const std::uint64_t total_calls =
      static_cast<std::uint64_t>(kThreads) * kCallsPerThread + polls;
  EXPECT_EQ(allowed.load() + 1 + reported.load() + tail, total_calls);
  // The cap held: the storm spans a handful of seconds at most, and
  // each one-second window admits at most 4 events.
  EXPECT_LE(allowed.load(), 4u * 30u);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolStress, ChunkedScheduleCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    constexpr std::size_t kCount = 5000;
    std::vector<std::atomic<int>> hit(kCount);
    for (auto& h : hit) h.store(0, std::memory_order_relaxed);
    std::atomic<bool> ids_ok{true};
    pool.parallel_for_chunked(
        kCount, chunk,
        [&](std::size_t worker, std::size_t begin, std::size_t end) {
          if (worker >= pool.workers()) {
            ids_ok.store(false, std::memory_order_relaxed);
          }
          for (std::size_t i = begin; i < end; ++i) {
            hit[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
    EXPECT_TRUE(ids_ok.load()) << "chunk " << chunk;
    for (std::size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hit[i].load(), 1) << "chunk " << chunk << " index " << i;
    }
  }
}

TEST(ThreadPoolStress, RunWorkersHandsOutDenseUniqueIds) {
  ThreadPool pool(4);
  const std::size_t n = pool.workers();
  for (int round = 0; round < 25; ++round) {
    std::vector<std::atomic<int>> seen(n);
    for (auto& s : seen) s.store(0, std::memory_order_relaxed);
    pool.run_workers(n, [&](std::size_t w) {
      ASSERT_LT(w, n);
      seen[w].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t w = 0; w < n; ++w) {
      ASSERT_EQ(seen[w].load(), 1) << "round " << round << " worker " << w;
    }
  }
}

}  // namespace
