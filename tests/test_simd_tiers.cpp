// Tier-equivalence: every compiled-and-supported SIMD tier must produce
// bit-identical filter scores.
//
// The dispatcher (cpu/simd_backend/simd_tier.hpp) promises that portable,
// SSE2 and AVX2 tiers are interchangeable — a database scan may resolve
// to any of them depending on host and FINEHMM_SIMD, and hit lists must
// not move.  These tests pin that promise against the scalar references
// for model lengths spanning one stripe (M=48) to many (M=2405), on
// random sequences and on adversarial ones built to hit the saturation
// edges (byte overflow in MSV, word clamping in ViterbiFilter).
//
// Tiers the host cannot run are skipped, not failed: the portable tier is
// the specification and is always exercised.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "bio/synthetic.hpp"
#include "cpu/fwd_filter.hpp"
#include "cpu/generic.hpp"
#include "cpu/msv_filter.hpp"
#include "cpu/msv_scalar.hpp"
#include "cpu/msv_wide.hpp"
#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "cpu/ssv.hpp"
#include "cpu/vit_filter.hpp"
#include "cpu/vit_scalar.hpp"
#include "cpu/vit_wide.hpp"
#include "hmm/generator.hpp"
#include "hmm/profile.hpp"
#include "profile/fwd_profile.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"

namespace {

using namespace finehmm;
using cpu::SimdTier;

struct Fixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  profile::MsvProfile msv;
  profile::VitProfile vit;
  profile::FwdProfile fwd;

  explicit Fixture(int M, std::uint64_t seed = 7)
      : model([&] {
          hmm::RandomHmmSpec spec;
          spec.length = M;
          spec.seed = seed;
          return hmm::generate_hmm(spec);
        }()),
        prof(model, hmm::AlignMode::kLocalMultihit, 400),
        msv(prof),
        vit(prof),
        fwd(prof) {}
};

/// The sequences every tier is checked on: random draws, plus the
/// saturation-edge cases — L=1, a short all-same-residue run, and a long
/// repeat of the residue the model scores best (argmin byte emission
/// cost), which drives the byte MSV into overflow and the word Viterbi
/// toward its clamp.
std::vector<bio::Sequence> test_sequences(const Fixture& fx) {
  Pcg32 rng(99);
  std::vector<bio::Sequence> seqs;
  for (int rep = 0; rep < 6; ++rep)
    seqs.push_back(bio::random_sequence(1 + rng.below(500), rng));
  seqs.push_back(bio::random_sequence(1, rng));

  int best = 0;
  long best_cost = -1;
  for (int x = 0; x < bio::kK; ++x) {
    const std::uint8_t* row = fx.msv.linear_row(x);
    long cost = 0;
    for (int k = 0; k < fx.msv.length(); ++k) cost += row[k];
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best = x;
    }
  }
  bio::Sequence hot;
  hot.name = "hot";
  hot.codes.assign(900, static_cast<std::uint8_t>(best));
  seqs.push_back(hot);
  bio::Sequence same;
  same.name = "same";
  same.codes.assign(40, 3);
  seqs.push_back(same);
  return seqs;
}

class TierEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TierEquivalence, MsvMatchesScalarAtEverySupportedTier) {
  Fixture fx(GetParam());
  auto seqs = test_sequences(fx);
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    cpu::MsvFilter filter(fx.msv, tier);
    ASSERT_EQ(filter.tier(), tier);
    for (const auto& seq : seqs) {
      auto ref = cpu::msv_scalar(fx.msv, seq.codes.data(), seq.length());
      auto got = filter.score(seq.codes.data(), seq.length());
      EXPECT_EQ(ref.overflowed, got.overflowed)
          << "tier=" << cpu::simd_tier_name(tier) << " L=" << seq.length();
      EXPECT_FLOAT_EQ(ref.score_nats, got.score_nats)
          << "tier=" << cpu::simd_tier_name(tier) << " L=" << seq.length();
    }
  }
}

TEST_P(TierEquivalence, SsvMatchesScalarAtEverySupportedTier) {
  Fixture fx(GetParam());
  auto seqs = test_sequences(fx);
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    cpu::set_simd_tier(tier);
    for (const auto& seq : seqs) {
      auto ref = cpu::ssv_scalar(fx.msv, seq.codes.data(), seq.length());
      auto got = cpu::ssv_striped(fx.msv, seq.codes.data(), seq.length());
      EXPECT_EQ(ref.overflowed, got.overflowed)
          << "tier=" << cpu::simd_tier_name(tier) << " L=" << seq.length();
      EXPECT_FLOAT_EQ(ref.score_nats, got.score_nats)
          << "tier=" << cpu::simd_tier_name(tier) << " L=" << seq.length();
    }
  }
  cpu::reset_simd_tier();
}

TEST_P(TierEquivalence, ViterbiMatchesScalarAtEverySupportedTier) {
  Fixture fx(GetParam());
  auto seqs = test_sequences(fx);
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    cpu::VitFilter filter(fx.vit, tier);
    ASSERT_EQ(filter.tier(), tier);
    for (const auto& seq : seqs) {
      auto ref = cpu::vit_scalar(fx.vit, seq.codes.data(), seq.length());
      auto got = filter.score(seq.codes.data(), seq.length());
      EXPECT_FLOAT_EQ(ref.score_nats, got.score_nats)
          << "tier=" << cpu::simd_tier_name(tier) << " L=" << seq.length();
    }
  }
}

// Forward runs natively at every tier's width.  The 4-lane tiers
// (portable, SSE2) share one summation order and must agree to the last
// bit; wider tiers reassociate the probability-space sums, so they carry
// the documented log-sum tolerance instead (docs/simd_dispatch.md,
// "Numerical contract").  Viterbi-class kernels stay bit-exact at every
// width — that is pinned by the max/add tests above.
float fwd_tier_tolerance(std::size_t L) {
  return 0.02f + 1e-4f * static_cast<float>(L);
}

TEST_P(TierEquivalence, ForwardRunsNativelyAtEveryTierWidth) {
  Fixture fx(GetParam());
  auto seqs = test_sequences(fx);
  cpu::FwdFilter portable(fx.fwd, SimdTier::kPortable);
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    cpu::FwdFilter filter(fx.fwd, tier);
    EXPECT_EQ(filter.tier(), tier);  // no clamp: every tier runs natively
    for (const auto& seq : seqs) {
      float ref = portable.score(seq.codes.data(), seq.length());
      float got = filter.score(seq.codes.data(), seq.length());
      if (tier <= SimdTier::kSse2)
        EXPECT_EQ(ref, got) << "tier=" << cpu::simd_tier_name(tier)
                            << " L=" << seq.length();
      else
        EXPECT_NEAR(ref, got, fwd_tier_tolerance(seq.length()))
            << "tier=" << cpu::simd_tier_name(tier) << " L=" << seq.length();
    }
  }
}

// fwd_striped() honors the active-tier override (the AVX2->SSE2 clamp is
// gone): forcing each supported tier must reproduce that tier's
// FwdFilter score exactly — same table entry, same re-striping.
TEST_P(TierEquivalence, FwdStripedHonorsActiveTierOverride) {
  Fixture fx(GetParam());
  auto seqs = test_sequences(fx);
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    cpu::set_simd_tier(tier);
    cpu::FwdFilter filter(fx.fwd, tier);
    for (const auto& seq : seqs) {
      float want = filter.score(seq.codes.data(), seq.length());
      float got = cpu::fwd_striped(fx.fwd, seq.codes.data(), seq.length());
      EXPECT_EQ(want, got) << "tier=" << cpu::simd_tier_name(tier)
                           << " L=" << seq.length();
    }
  }
  cpu::reset_simd_tier();
}

// The width-templated engines route their native widths (32/64-byte MSV,
// 16/32-word Viterbi) through the AVX2/AVX-512 backends when active;
// scores must not depend on whether the native or portable path ran.
TEST_P(TierEquivalence, WideEnginesMatchScalarUnderEveryForcedTier) {
  Fixture fx(GetParam());
  auto seqs = test_sequences(fx);
  cpu::WideMsvStripes<32> msv32(fx.msv);
  cpu::WideMsvStripes<64> msv64(fx.msv);
  cpu::WideVitStripes<16> vit16(fx.vit);
  cpu::WideVitStripes<32> vit32(fx.vit);
  for (SimdTier tier : cpu::supported_simd_tiers()) {
    cpu::set_simd_tier(tier);
    for (const auto& seq : seqs) {
      auto mref = cpu::msv_scalar(fx.msv, seq.codes.data(), seq.length());
      auto mgot =
          cpu::msv_striped_wide(fx.msv, msv32, seq.codes.data(), seq.length());
      EXPECT_EQ(mref.overflowed, mgot.overflowed);
      EXPECT_FLOAT_EQ(mref.score_nats, mgot.score_nats)
          << "tier=" << cpu::simd_tier_name(tier) << " L=" << seq.length();
      auto mgot64 =
          cpu::msv_striped_wide(fx.msv, msv64, seq.codes.data(), seq.length());
      EXPECT_EQ(mref.overflowed, mgot64.overflowed);
      EXPECT_FLOAT_EQ(mref.score_nats, mgot64.score_nats)
          << "tier=" << cpu::simd_tier_name(tier) << " L=" << seq.length();
      auto vref = cpu::vit_scalar(fx.vit, seq.codes.data(), seq.length());
      auto vgot =
          cpu::vit_striped_wide(fx.vit, vit16, seq.codes.data(), seq.length());
      EXPECT_FLOAT_EQ(vref.score_nats, vgot.score_nats)
          << "tier=" << cpu::simd_tier_name(tier) << " L=" << seq.length();
      auto vgot32 =
          cpu::vit_striped_wide(fx.vit, vit32, seq.codes.data(), seq.length());
      EXPECT_FLOAT_EQ(vref.score_nats, vgot32.score_nats)
          << "tier=" << cpu::simd_tier_name(tier) << " L=" << seq.length();
    }
  }
  cpu::reset_simd_tier();
}

INSTANTIATE_TEST_SUITE_P(ModelLengths, TierEquivalence,
                         ::testing::Values(48, 400, 1002, 2405));

TEST(SimdTierApi, ResolveClampsToSupported) {
  for (SimdTier t : {SimdTier::kPortable, SimdTier::kSse2, SimdTier::kAvx2,
                     SimdTier::kAvx512}) {
    SimdTier r = cpu::resolve_simd_tier(t);
    EXPECT_LE(static_cast<int>(r), static_cast<int>(t));
    EXPECT_TRUE(cpu::simd_tier_supported(r));
  }
  EXPECT_EQ(cpu::resolve_simd_tier(SimdTier::kPortable),
            SimdTier::kPortable);
}

TEST(SimdTierApi, OverrideWinsAndResets) {
  cpu::set_simd_tier(SimdTier::kPortable);
  EXPECT_EQ(cpu::active_simd_tier(), SimdTier::kPortable);
  cpu::reset_simd_tier();
  EXPECT_EQ(cpu::active_simd_tier(), cpu::max_simd_tier());
}

TEST(SimdTierApi, ParseNames) {
  EXPECT_EQ(cpu::parse_simd_tier("portable"), SimdTier::kPortable);
  EXPECT_EQ(cpu::parse_simd_tier("sse2"), SimdTier::kSse2);
  EXPECT_EQ(cpu::parse_simd_tier("avx2"), SimdTier::kAvx2);
  EXPECT_EQ(cpu::parse_simd_tier("avx512"), SimdTier::kAvx512);
  EXPECT_FALSE(cpu::parse_simd_tier("sse9").has_value());
  for (SimdTier t : cpu::supported_simd_tiers())
    EXPECT_EQ(cpu::parse_simd_tier(cpu::simd_tier_name(t)), t);
}

TEST(SimdTierApi, SupportedTiersAlwaysIncludePortable) {
  auto tiers = cpu::supported_simd_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), SimdTier::kPortable);
  for (SimdTier t : tiers) EXPECT_TRUE(cpu::simd_tier_supported(t));
}

}  // namespace
