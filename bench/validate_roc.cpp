// Filter fidelity: how well each stage's score separates true homologs
// from null sequences.
//
// The pipeline's premise (paper §I-II) is that the cheap scores are
// faithful proxies for the expensive ones: the high tail of MSV agrees
// with Viterbi, which agrees with Forward.  We quantify that as ROC AUC
// of each stage's bit score on planted homologs vs nulls — expect
// Forward >= Viterbi >= MSV >= SSV, all far above 0.5, with remote
// (fragmentary) homologs separating the stages more than easy full-length
// ones.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "cpu/fwd_filter.hpp"
#include "cpu/msv_filter.hpp"
#include "cpu/ssv.hpp"
#include "cpu/vit_filter.hpp"
#include "hmm/sampler.hpp"

using namespace finehmm;
using namespace finehmm::bench;

namespace {

double roc_auc(const std::vector<double>& pos,
               const std::vector<double>& neg) {
  // AUC = P(pos score > neg score), ties at half weight.
  double wins = 0.0;
  for (double p : pos)
    for (double n : neg) wins += p > n ? 1.0 : (p == n ? 0.5 : 0.0);
  return wins / (static_cast<double>(pos.size()) * neg.size());
}

}  // namespace

int main() {
  const int M = 120;
  auto model = hmm::paper_model(M);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 250);
  profile::MsvProfile msv(prof);
  profile::VitProfile vit(prof);
  profile::FwdProfile fwd(prof);
  cpu::MsvFilter msv_f(msv);
  cpu::VitFilter vit_f(vit);
  cpu::FwdFilter fwd_f(fwd);

  auto score_set = [&](const std::vector<bio::Sequence>& seqs,
                       std::vector<double>& ssv_s, std::vector<double>& msv_s,
                       std::vector<double>& vit_s,
                       std::vector<double>& fwd_s) {
    for (const auto& seq : seqs) {
      int L = static_cast<int>(seq.length());
      auto cap = [&](const cpu::FilterResult& r) {
        return r.overflowed ? 100.0
                            : hmm::nats_to_bits(r.score_nats, L);
      };
      ssv_s.push_back(cap(cpu::ssv_striped(msv, seq.codes.data(), L)));
      msv_s.push_back(cap(msv_f.score(seq.codes.data(), L)));
      vit_s.push_back(cap(vit_f.score(seq.codes.data(), L)));
      fwd_s.push_back(
          hmm::nats_to_bits(fwd_f.score(seq.codes.data(), L), L));
    }
  };

  Pcg32 rng(97);
  const int n = 150;
  std::vector<bio::Sequence> nulls, easy, hard;
  for (int i = 0; i < n; ++i)
    nulls.push_back(bio::random_sequence(250, rng));
  hmm::SampleOptions full;
  full.fragment_prob = 0.0;
  for (int i = 0; i < n; ++i) easy.push_back(hmm::sample_homolog(model, rng, full));
  hmm::SampleOptions frag;
  frag.fragment_prob = 1.0;  // remote-ish: fragments only
  for (int i = 0; i < n; ++i) hard.push_back(hmm::sample_homolog(model, rng, frag));

  std::vector<double> null_s[4], easy_s[4], hard_s[4];
  score_set(nulls, null_s[0], null_s[1], null_s[2], null_s[3]);
  score_set(easy, easy_s[0], easy_s[1], easy_s[2], easy_s[3]);
  score_set(hard, hard_s[0], hard_s[1], hard_s[2], hard_s[3]);

  std::printf("Filter fidelity: ROC AUC of each stage's bit score (M=%d,\n"
              "%d homologs vs %d nulls)\n\n", M, n, n);
  TextTable table({"stage", "AUC full-length homologs", "AUC fragments"});
  const char* names[4] = {"SSV", "MSV", "P7Viterbi", "Forward"};
  for (int st = 0; st < 4; ++st)
    table.add_row({names[st],
                   TextTable::num(roc_auc(easy_s[st], null_s[st]), 4),
                   TextTable::num(roc_auc(hard_s[st], null_s[st]), 4)});
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nAll stages separate homologs nearly perfectly; the ordering on the\n"
      "harder fragment set shows why the pipeline can afford cheap early\n"
      "filters at loose thresholds and save Forward for the end (paper\n"
      "Fig. 1's 2.2%% / 0.1%% cascade).\n");
  return 0;
}
