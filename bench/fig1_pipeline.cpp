// Figure 1 reproduction: the HMMER3 task pipeline's pass rates and
// execution-time split.
//
// Paper (model size 400, Env_nr): 2.2% of sequences pass the MSV filter,
// 0.1% reach Forward; execution time splits 80.6% MSV / 14.5% P7Viterbi /
// 4.9% Forward-Backward.  We run the real CPU pipeline on an Env_nr-like
// sample with a small planted-homolog fraction and report both the
// measured host wall-clock split and the modeled quad-core split.
#include <cstdio>

#include "bench_common.hpp"
#include "pipeline/pipeline.hpp"

using namespace finehmm;
using namespace finehmm::bench;

int main() {
  const int M = 400;
  auto model = hmm::paper_model(M);

  pipeline::WorkloadSpec spec;
  spec.db = DbPreset::envnr().spec(1e-6);
  spec.db.n_sequences =
      static_cast<std::size_t>(bench_cell_budget() * 4 / M / 197.0);
  if (spec.db.n_sequences < 500) spec.db.n_sequences = 500;
  spec.homolog_fraction = 0.005;
  auto db = pipeline::make_workload(model, spec);

  std::printf("Figure 1: HMMER3 task pipeline, model size %d, %zu %s\n", M,
              db.size(), "Envnr-like sequences");

  pipeline::HmmSearch search(model);
  auto r = search.run_cpu(db);

  double total_s = r.msv.seconds + r.vit.seconds + r.fwd.seconds;
  TextTable table({"stage", "sequences in", "pass rate", "DP cells",
                   "measured time", "time share"});
  auto row = [&](const char* name, const pipeline::StageStats& st) {
    table.add_row({name, std::to_string(st.n_in),
                   TextTable::pct(st.pass_rate()),
                   TextTable::num(st.cells / 1e6, 1) + "M",
                   TextTable::num(st.seconds * 1e3, 1) + " ms",
                   TextTable::pct(total_s > 0 ? st.seconds / total_s : 0)});
  };
  row("MSV", r.msv);
  row("P7Viterbi", r.vit);
  row("Forward", r.fwd);
  std::fputs(table.str().c_str(), stdout);

  std::printf("\nhits reported: %zu\n", r.hits.size());
  std::printf(
      "\nPaper reference (Env_nr, M=400): pass rates 2.2%% -> 0.1%%;\n"
      "execution time 80.6%% MSV / 14.5%% P7Viterbi / 4.9%% Forward.\n"
      "(Our Forward stage is a generic float implementation, not HMMER's\n"
      "SSE Forward, so its time share runs higher than the paper's.)\n");
  return 0;
}
