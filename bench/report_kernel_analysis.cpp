// Kernel characterization report — backs the paper's §V discussion:
// "These two core algorithms ... are memory-bandwidth bound, as the
// innermost loop in both the MSV as well as P7Viterbi have low arithmetic
// intensity due to the amount of data read and the number of arithmetic
// instructions performed."
#include <cstdio>

#include "bench_common.hpp"
#include "perf/report.hpp"

using namespace finehmm;
using namespace finehmm::bench;

int main() {
  auto k40 = simt::DeviceSpec::tesla_k40();
  const int M = 400;
  auto model = hmm::paper_model(M);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  profile::VitProfile vit(prof);
  auto db = sample_database(DbPreset::envnr(), M, bench_cell_budget());
  bio::PackedDatabase packed(db);
  gpu::GpuSearch search(k40);

  std::printf("Kernel characterization (M=%d, %s)\n", M, k40.name.c_str());

  struct Case {
    const char* name;
    gpu::StageResult run;
  };
  Case cases[] = {
      {"MSV, shared params",
       search.run_msv(msv, packed, gpu::ParamPlacement::kShared)},
      {"MSV, global params",
       search.run_msv(msv, packed, gpu::ParamPlacement::kGlobal)},
      {"P7Viterbi (lazy-F), shared",
       search.run_vit(vit, packed, gpu::ParamPlacement::kShared)},
      {"P7Viterbi (prefix-scan), shared",
       search.run_vit_prefix(vit, packed, gpu::ParamPlacement::kShared)},
      {"SSV, shared",
       search.run_ssv(msv, packed, gpu::ParamPlacement::kShared)},
      {"MSV synchronized x4 (ablation)",
       search.run_msv_sync(msv, packed, gpu::ParamPlacement::kShared, 4)},
  };

  for (auto& c : cases) {
    auto a = perf::analyze_kernel(k40, c.run.counters, c.run.plan.occ,
                                  c.run.plan.cfg.warps_per_block);
    std::printf("\n%s  (occupancy %.0f%%)\n", c.name,
                100.0 * c.run.plan.occ.fraction);
    std::fputs(perf::format_analysis(a).c_str(), stdout);
  }
  std::printf(
      "\nNote the LD/ST-pipe dominance and low arithmetic intensity across\n"
      "the board — the paper's \"memory-bandwidth bound\" observation —\n"
      "and the sync share of the synchronized ablation kernel.\n");
  return 0;
}
