// Ablation: parallel Lazy-F (Fig. 7) vs prefix-scan D-chain evaluation
// (the paper's §VI future work, implemented in gpu/vit_prefix_kernel).
//
// Lazy-F is opportunistic: one warp vote per 32-position group, extra
// iterations only where the D->D path improves something.  The prefix
// scan pays a fixed 2*log2(32) shuffle steps per group regardless.  The
// paper's motivation: "while the number of D-D transitions is very low
// for smaller models, it can prove to be expensive for larger models with
// as much as 80% of D-D transitions being taken" — so we sweep the
// delete-extension rate and find the crossover.
#include <cstdio>

#include "bench_common.hpp"

using namespace finehmm;
using namespace finehmm::bench;

int main() {
  auto k40 = simt::DeviceSpec::tesla_k40();
  const int M = 256;

  std::printf(
      "Ablation: parallel Lazy-F vs prefix-scan D evaluation "
      "(P7Viterbi, M=%d)\n\n", M);
  TextTable table({"delete-extend", "lazy iters/grp", "lazy time",
                   "prefix time", "prefix/lazy", "winner"});

  for (double dd : {0.05, 0.3, 0.5, 0.7, 0.85, 0.95}) {
    hmm::RandomHmmSpec spec;
    spec.length = M;
    spec.seed = 77;
    spec.indel_open = dd >= 0.7 ? 0.12 : 0.02;  // heavy models open often
    spec.delete_extend = dd;
    auto model = hmm::generate_hmm(spec);
    hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
    profile::VitProfile vit(prof);
    auto db =
        sample_database(DbPreset::swissprot(), M, bench_cell_budget() / 4);
    bio::PackedDatabase packed(db);

    gpu::GpuSearch search(k40);
    auto lazy = search.run_vit(vit, packed, gpu::ParamPlacement::kShared);
    auto prefix =
        search.run_vit_prefix(vit, packed, gpu::ParamPlacement::kShared);
    if (lazy.scores[0] != prefix.scores[0]) {
      std::fprintf(stderr, "FATAL: kernels disagree\n");
      return 1;
    }
    auto lazy_t = perf::estimate_gpu_time(k40, lazy.counters, lazy.plan.occ,
                                          lazy.plan.cfg.warps_per_block);
    auto prefix_t =
        perf::estimate_gpu_time(k40, prefix.counters, prefix.plan.occ,
                                prefix.plan.cfg.warps_per_block);

    double groups =
        static_cast<double>(lazy.counters.residues) * ((M + 31) / 32);
    double iters =
        static_cast<double>(lazy.counters.lazyf_inner) / groups;
    double ratio = prefix_t.total_s / lazy_t.total_s;
    table.add_row({TextTable::num(dd), TextTable::num(iters),
                   TextTable::num(lazy_t.total_s * 1e3, 2) + " ms",
                   TextTable::num(prefix_t.total_s * 1e3, 2) + " ms",
                   TextTable::num(ratio),
                   ratio < 1.0 ? "prefix-scan" : "lazy-F"});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nBoth kernels return bit-identical scores (tested).  Lazy-F wins\n"
      "on Pfam-like models; the prefix scan's fixed log2(32) bound pays\n"
      "off only when D-D chains fire constantly — matching the paper's\n"
      "\"establish an upper bound in the number of iterations\" rationale.\n");
  return 0;
}
