// Ablation: double-buffered in-place row update vs ping-pong rows.
//
// The warp-synchronous kernel updates its DP row IN PLACE: before writing
// a 32-cell group it reads the next group's diagonal dependencies into
// registers (Fig. 5 steps 1-4), protecting the one boundary cell the
// write would clobber.  The alternative that needs no such care is
// ping-pong buffering — two rows per warp, read row A, write row B —
// which costs double the per-warp shared memory and therefore occupancy.
// This ablation prices that choice across model sizes: same instruction
// stream, half the resident warps.
#include <cstdio>

#include "bench_common.hpp"
#include "obs/telemetry.hpp"

using namespace finehmm;
using namespace finehmm::bench;

int main() {
  auto k40 = simt::DeviceSpec::tesla_k40();
  std::printf(
      "Ablation: in-place double-buffered rows vs ping-pong rows (MSV,\n"
      "shared parameters, %s)\n\n", k40.name.c_str());
  TextTable table({"HMM size", "in-place occ", "ping-pong occ",
                   "in-place x", "ping-pong x", "penalty"});

  for (int M : paper_sizes()) {
    auto db = sample_database(DbPreset::envnr(), M, bench_cell_budget() / 2);
    bio::PackedDatabase packed(db);
    auto model = hmm::paper_model(M);
    hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
    profile::MsvProfile msv(prof);

    auto in_place =
        measure_msv(k40, msv, packed, gpu::ParamPlacement::kShared,
                    kEnvnrResidues);
    if (!in_place.feasible) {
      table.add_row({std::to_string(M), "n/a", "n/a", "n/a", "n/a", "-"});
      continue;
    }

    // Ping-pong variant: identical counters, but the block needs TWO rows
    // per warp; re-plan the launch under that footprint.
    const int mpad = msv.padded_length();
    gpu::LaunchPlan best;
    for (int warps = 1; warps <= k40.max_warps_per_sm; warps *= 2) {
      gpu::MsvSmemLayout l;
      l.mpad = mpad;
      l.warps = warps;
      l.shared_params = true;
      std::size_t smem = l.total_bytes() +
                         static_cast<std::size_t>(warps) * l.row_elems();
      if (smem > k40.shared_mem_per_block) continue;
      simt::KernelResources res;
      res.regs_per_thread = gpu::kMsvRegsPerThread;
      res.smem_per_block = smem;
      res.threads_per_block = warps * simt::kWarpSize;
      auto occ = simt::compute_occupancy(k40, res);
      if (occ.warps_per_sm > best.occ.warps_per_sm) {
        best.feasible = true;
        best.occ = occ;
        best.cfg.warps_per_block = warps;
      }
    }
    if (!best.feasible) {
      table.add_row({std::to_string(M),
                     TextTable::pct(in_place.occupancy, 0), "n/a",
                     TextTable::num(in_place.speedup()), "n/a", "inf"});
      continue;
    }
    auto pp_time = perf::extrapolate(
        perf::estimate_gpu_time(k40, in_place.run.counters, best.occ,
                                best.cfg.warps_per_block),
        kEnvnrResidues /
            static_cast<double>(packed.total_residues()));
    double pp_speedup = obs::safe_rate(in_place.cpu_time, pp_time.total_s);
    table.add_row(
        {std::to_string(M), TextTable::pct(in_place.occupancy, 0),
         TextTable::pct(best.occ.fraction, 0),
         TextTable::num(in_place.speedup()), TextTable::num(pp_speedup),
         TextTable::num(in_place.speedup() / pp_speedup, 2) + "x"});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nThe in-place update is free where occupancy is not shared-memory\n"
      "bound, and worth up to the full occupancy ratio where it is — the\n"
      "reason Fig. 5's register double-buffering exists at all.\n");
  return 0;
}
