// Figure 9 reproduction: per-stage speedup and occupancy vs model size.
//
// Four panels: {MSV, P7Viterbi} x {Swissprot, Envnr}.  For each HMM size
// in {48, 100, 200, 400, 800, 1002, 1528, 2405} we report the shared- and
// global-memory configurations' speedups over the modeled quad-core SSE
// baseline, their device occupancies, and the optimal strategy (the
// better of the two — the paper's black curve, which switches from shared
// to global near size ~1000 for MSV).
#include <cstdio>

#include "bench_common.hpp"

using namespace finehmm;
using namespace finehmm::bench;

namespace {

void run_panel(const char* stage_name, gpu::Stage stage,
               const DbPreset& preset, const simt::DeviceSpec& dev) {
  std::printf("\n=== %s segment, %s database (full size: %.0fM residues) ===\n",
              stage_name, preset.name.c_str(), preset.full_residues / 1e6);
  TextTable table({"HMM size", "shared speedup", "global speedup",
                   "shared occ", "global occ", "optimal", "optimal cfg"});

  for (int M : paper_sizes()) {
    auto db = sample_database(preset, M, bench_cell_budget());
    bio::PackedDatabase packed(db);
    auto model = hmm::paper_model(M);
    hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);

    StageMeasurement shared_m, global_m;
    if (stage == gpu::Stage::kMsv) {
      profile::MsvProfile msv(prof);
      shared_m = measure_msv(dev, msv, packed, gpu::ParamPlacement::kShared,
                             preset.full_residues);
      global_m = measure_msv(dev, msv, packed, gpu::ParamPlacement::kGlobal,
                             preset.full_residues);
    } else {
      profile::VitProfile vit(prof);
      shared_m = measure_vit(dev, vit, packed, gpu::ParamPlacement::kShared,
                             preset.full_residues);
      global_m = measure_vit(dev, vit, packed, gpu::ParamPlacement::kGlobal,
                             preset.full_residues);
    }

    double s_sp = shared_m.feasible ? shared_m.speedup() : 0.0;
    double g_sp = global_m.feasible ? global_m.speedup() : 0.0;
    bool shared_wins = s_sp >= g_sp;
    table.add_row({std::to_string(M),
                   shared_m.feasible ? TextTable::num(s_sp) : "n/a",
                   global_m.feasible ? TextTable::num(g_sp) : "n/a",
                   shared_m.feasible ? TextTable::pct(shared_m.occupancy)
                                     : "n/a",
                   global_m.feasible ? TextTable::pct(global_m.occupancy)
                                     : "n/a",
                   TextTable::num(std::max(s_sp, g_sp)),
                   shared_wins ? "shared" : "global"});
  }
  std::fputs(table.str().c_str(), stdout);
}

}  // namespace

int main() {
  auto k40 = simt::DeviceSpec::tesla_k40();
  std::printf("Figure 9: stage-wise speedup of hmmsearch on %s\n",
              k40.name.c_str());
  std::printf("baseline: modeled quad-core i5 3.4 GHz SSE HMMER 3.0\n");
  std::printf("sampled cells per config: %.1fM (FINEHMM_BENCH_CELLS)\n",
              bench_cell_budget() / 1e6);

  for (const auto& preset : {DbPreset::swissprot(), DbPreset::envnr()}) {
    run_panel("MSV", gpu::Stage::kMsv, preset, k40);
    run_panel("P7Viterbi", gpu::Stage::kViterbi, preset, k40);
  }
  std::printf(
      "\nPaper reference: MSV peaks ~5.0x near size 800 (shared), switches\n"
      "to the global configuration near size 1002; P7Viterbi peaks ~2.9x\n"
      "with occupancy capped at 50%% by register pressure.\n");
  return 0;
}
