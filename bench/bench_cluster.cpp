// Sharded-cluster throughput: a closed-loop client driving ClusterClient
// over 1, 2, and 4 in-process shard workers (src/cluster/,
// docs/cluster.md).
//
// Each point splits the same synthetic database into n residue-balanced
// shards (the fsqdb_shard plan), starts one single-threaded SearchServer
// per shard over its own loopback hub, and fires requests back to back
// through the scatter-gather path — handshake, z_override forwarding,
// deadline bookkeeping, and the bit-identical merge are all on the
// measured path.  The database is sized so DP sweep time dominates
// coordination overhead; what sharding buys is concurrent half-sweeps on
// separate workers, so on a host with >= 2 hardware threads the 2-shard
// closed-loop rate must clear 1.6x the 1-shard rate (asserted, exit 1).
// On a single-hardware-thread host the shards' sweeps serialize and no
// honest speedup exists, so the guard is recorded as waived — same
// policy as the SIMD-tier-gated kernel guards (docs/cluster.md).
//
// Results are spliced into BENCH_throughput.json under a "cluster" key
// (the file is created standalone when bench_throughput has not run).
//
// Usage: bench_cluster [db_scale] [model_length] [requests] [out.json]
//   defaults: 0.002 (~900 sequences, DP-dominated), 120, 8,
//   BENCH_throughput.json
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bio/synthetic.hpp"
#include "cluster/cluster_client.hpp"
#include "cluster/shard_map.hpp"
#include "hmm/binary_io.hpp"
#include "hmm/generator.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/workload.hpp"
#include "server/loopback.hpp"
#include "server/server.hpp"
#include "util/timer.hpp"

namespace {

using namespace finehmm;

double percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] + (sorted_ms[hi] - sorted_ms[lo]) * frac;
}

struct ShardPoint {
  std::size_t shards = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  double wall_seconds = 0;
  double p50 = 0, p95 = 0, p99 = 0, max_ms = 0;
  double requests_per_sec() const {
    return obs::safe_rate(static_cast<double>(completed), wall_seconds);
  }
};

/// One closed-loop run: split the db into `n_shards`, stand a cluster
/// up, fire `requests` searches serially, tear the cluster down.
ShardPoint run_point(std::size_t n_shards, std::size_t requests,
                     const hmm::Plan7Hmm& model,
                     const stats::ModelStats& model_stats,
                     const bio::SequenceDatabase& db) {
  std::vector<std::uint32_t> lengths;
  lengths.reserve(db.size());
  for (std::size_t s = 0; s < db.size(); ++s)
    lengths.push_back(static_cast<std::uint32_t>(db[s].length()));
  const auto ranges = cluster::plan_shard_ranges(lengths, n_shards);

  cluster::ShardManifest manifest;
  manifest.source = "synthetic";
  manifest.total_sequences = db.size();
  manifest.total_residues = db.total_residues();

  std::vector<std::unique_ptr<server::SearchServer>> servers;
  std::vector<std::unique_ptr<server::LoopbackHub>> hubs;
  std::vector<std::thread> serve_threads;
  for (std::size_t k = 0; k < ranges.size(); ++k) {
    const auto [begin, end] = ranges[k];
    bio::SequenceDatabase shard_db;
    shard_db.reserve(end - begin);
    cluster::ShardInfo info;
    info.path = "shard." + std::to_string(k) + ".fsqdb";
    info.seq_base = begin;
    info.sequences = end - begin;
    info.length_buckets.assign(cluster::kLengthBuckets, 0);
    for (std::size_t i = begin; i < end; ++i) {
      info.residues += db[i].length();
      ++info.length_buckets[cluster::length_bucket(db[i].length())];
      shard_db.add(db[i]);
    }
    manifest.shards.push_back(std::move(info));

    server::ServerConfig cfg;
    cfg.scan_threads = 1;        // scale-out, not scale-up, is measured
    cfg.coalesce_window_ms = 0;  // one serial client: gathering is waste
    cfg.role = server::NodeRole::kShard;
    cfg.shard_id = static_cast<std::uint32_t>(k);
    servers.push_back(std::make_unique<server::SearchServer>(cfg));
    servers.back()->add_database(shard_db);
    hubs.push_back(std::make_unique<server::LoopbackHub>());
    serve_threads.emplace_back(
        [&, k] { servers[k]->serve(*hubs[k]->listener()); });
  }

  cluster::ClusterConfig ccfg;
  ccfg.manifest = manifest;
  ccfg.require_shard_role = true;
  cluster::ClusterClient client(
      std::move(ccfg),
      [&hubs](std::size_t shard) { return hubs[shard]->connect(); });

  // Ship the calibrated stats inside the blob so shard workers never
  // recalibrate: the bench measures sweeps, not calibration.
  server::SearchRequest req;
  req.evalue = 10.0;
  std::ostringstream blob;
  hmm::write_hmm_binary(blob, model, &model_stats);
  const std::string bytes = blob.str();
  req.model_blob.assign(bytes.begin(), bytes.end());

  ShardPoint pt;
  pt.shards = n_shards;
  std::vector<double> lat_ms;
  lat_ms.reserve(requests);
  Timer wall;
  for (std::size_t i = 0; i < requests; ++i) {
    Timer t;
    const cluster::ClusterSearchResult rr = client.search(req);
    if (rr.status == server::ClientStatus::kOk && !rr.degraded)
      lat_ms.push_back(t.seconds() * 1e3);
    else
      ++pt.failed;
  }
  pt.wall_seconds = wall.seconds();

  for (auto& srv : servers) srv->begin_drain();
  for (std::thread& t : serve_threads) t.join();

  std::sort(lat_ms.begin(), lat_ms.end());
  pt.completed = lat_ms.size();
  pt.p50 = percentile(lat_ms, 50);
  pt.p95 = percentile(lat_ms, 95);
  pt.p99 = percentile(lat_ms, 99);
  pt.max_ms = lat_ms.empty() ? 0.0 : lat_ms.back();
  return pt;
}

std::string point_json(const ShardPoint& pt) {
  std::ostringstream os;
  os << "{\"shards\": " << pt.shards << ", \"completed\": " << pt.completed
     << ", \"failed\": " << pt.failed << ", \"wall_seconds\": "
     << pt.wall_seconds << ", \"requests_per_sec\": "
     << obs::json_rate(static_cast<double>(pt.completed), pt.wall_seconds)
     << ", \"latency_ms\": {\"p50\": " << pt.p50 << ", \"p95\": " << pt.p95
     << ", \"p99\": " << pt.p99 << ", \"max\": " << pt.max_ms << "}}";
  return os.str();
}

/// Splice `section` in as a top-level "cluster" key of an existing JSON
/// object file, or write a fresh standalone object around it.
void write_results(const std::string& path, const std::string& section) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in.good()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }
  // Re-runs replace the section we spliced last time, never duplicate it.
  const std::size_t prior = existing.find(",\n  \"cluster\":");
  if (prior != std::string::npos) existing = existing.substr(0, prior) + "\n}\n";
  const std::size_t brace = existing.rfind('}');
  std::ofstream out(path);
  if (brace != std::string::npos) {
    out << existing.substr(0, brace) << ",\n  \"cluster\":" << section
        << "\n}\n";
  } else {
    out << "{\n  \"bench\": \"cluster\",\n  \"cluster\":" << section << "\n}\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::stod(argv[1]) : 0.002;
  const int M = argc > 2 ? std::stoi(argv[2]) : 120;
  const std::size_t requests =
      argc > 3 ? static_cast<std::size_t>(std::stoul(argv[3])) : 8;
  const std::string out_path =
      argc > 4 ? argv[4] : "BENCH_throughput.json";

  pipeline::WorkloadSpec wspec;
  wspec.db = bio::SyntheticDbSpec::swissprot_like(scale);
  wspec.homolog_fraction = 0.02;
  const hmm::Plan7Hmm model = hmm::paper_model(M);
  const bio::SequenceDatabase db = pipeline::make_workload(model, wspec);

  stats::CalibrateOptions calib;
  calib.n_samples = 100;
  const pipeline::HmmSearch reference(model, {}, calib);
  const stats::ModelStats& model_stats = reference.model_stats();

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("cluster bench: %zu sequences, %llu residues, M=%d, "
              "%zu requests/point, %u hardware threads\n",
              db.size(),
              static_cast<unsigned long long>(db.total_residues()), M,
              requests, hw);

  std::vector<ShardPoint> points;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2},
                             std::size_t{4}}) {
    const ShardPoint pt = run_point(shards, requests, model, model_stats,
                                    db);
    std::printf("shards=%zu  %.1f req/s  p50=%.2fms p95=%.2fms p99=%.2fms  "
                "(%zu ok, %zu failed)\n",
                pt.shards, pt.requests_per_sec(), pt.p50, pt.p95, pt.p99,
                pt.completed, pt.failed);
    if (pt.failed != 0) {
      std::cerr << "FATAL: " << pt.failed << " requests failed at "
                << pt.shards << " shards\n";
      return 1;
    }
    points.push_back(pt);
  }

  // The scale-out guard: with the sweep halved across two concurrent
  // workers, 2-shard closed-loop throughput must clear 1.6x the 1-shard
  // rate — on hosts that can actually run two sweeps at once.  On one
  // hardware thread the halves serialize and the honest ratio is ~1.0,
  // so the guard is waived (and recorded as such), exactly like the
  // SIMD-tier-gated guards in the kernel bench.
  const double single = points[0].requests_per_sec();
  const double two = points[1].requests_per_sec();
  const double four = points[2].requests_per_sec();
  const double speedup2 = obs::safe_rate(two, single);
  const double speedup4 = obs::safe_rate(four, single);
  const bool enforce = hw >= 2;
  std::printf("scale-out speedup: 2 shards %.2fx, 4 shards %.2fx "
              "(guard %s)\n",
              speedup2, speedup4,
              enforce ? "enforced: 2-shard >= 1.6x" : "waived: 1 hw thread");
  if (enforce && speedup2 < 1.6) {
    std::cerr << "FATAL: 2-shard throughput only " << speedup2
              << "x single-shard (guard: >= 1.6x) — scatter-gather is "
                 "eating the sharding win\n";
    return 1;
  }

  std::ostringstream section;
  section << " {\n    \"transport\": \"loopback\",\n"
          << "    \"model_length\": " << M << ",\n"
          << "    \"db_sequences\": " << db.size() << ",\n"
          << "    \"requests\": " << requests << ",\n"
          << "    \"hardware_threads\": " << hw << ",\n"
          << "    \"speedup_2v1\": " << speedup2 << ",\n"
          << "    \"speedup_4v1\": " << speedup4 << ",\n"
          << "    \"guard_enforced\": " << (enforce ? "true" : "false")
          << ",\n"
          << "    \"shard_points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i)
    section << "      " << point_json(points[i])
            << (i + 1 < points.size() ? "," : "") << "\n";
  section << "    ]\n  }";
  write_results(out_path, section.str());
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
