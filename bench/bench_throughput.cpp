// Database-scan throughput per filter stage, per SIMD tier, per thread
// count, on a Swissprot-like synthetic database — plus a full-pipeline
// end-to-end sweep comparing the heap-decoded parallel engine against the
// zero-copy streaming engine (MappedSeqDb + overlapped rescoring).
//
// Unlike the micro suite (one hot sequence), this drives the
// allocation-free BatchScanner over a whole database through the
// ThreadPool's chunked dynamic scheduler — the same path the CPU engines
// use — so the numbers include real length imbalance and scheduling
// overhead.  Results are written to BENCH_throughput.json (machine
// readable; cells/sec per stage x tier x threads, and per pipeline
// engine x threads, with host info) for the roadmap's evidence trail.
//
// Usage: bench_throughput [db_scale] [model_length] [out.json]
//   db_scale default 0.001 (~460 sequences), model_length default 400.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "bio/seq_db_io.hpp"
#include "bio/synthetic.hpp"
#include "cpu/simd_backend/backend.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "hmm/generator.hpp"
#include "hmm/model_group.hpp"
#include "hmm/profile.hpp"
#include "obs/histogram.hpp"
#include "obs/recorder.hpp"
#include "obs/request_trace.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/batch_scanner.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/workload.hpp"
#include "profile/fwd_profile.hpp"
#include "profile/msv_profile.hpp"
#include "profile/vit_profile.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace {

using namespace finehmm;

struct Record {
  const char* stage;
  const char* tier;
  std::size_t threads;
  double cells;
  double seconds;
  double cells_per_sec() const { return obs::safe_rate(cells, seconds); }
};

/// Time one stage over the first `n` database sequences; returns cells/s.
template <class ScoreFn>
Record time_stage(const char* stage, cpu::SimdTier tier, ThreadPool& pool,
                  std::size_t threads, const bio::SequenceDatabase& db,
                  std::size_t n, int M, ScoreFn&& score) {
  Timer timer;
  pool.parallel_for_chunked(
      n, 16, [&](std::size_t worker, std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s)
          score(worker, db[s].codes.data(), db[s].length());
      });
  Record r;
  r.stage = stage;
  r.tier = cpu::simd_tier_name(tier);
  r.threads = threads;
  r.seconds = timer.seconds();
  r.cells = 0;
  for (std::size_t s = 0; s < n; ++s)
    r.cells += static_cast<double>(db[s].length()) * M;
  return r;
}

std::string host_name() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0')
    return buf;
#endif
  return "unknown";
}

struct PipelineRecord {
  const char* engine;  // "parallel_heap" or "overlapped_mmap"
  std::size_t threads;
  double cells = 0;    // total DP cells across all stages, one scan
  double seconds = 0;  // best-of-3 end-to-end (load + scan)
  std::size_t hits = 0;
  double cells_per_sec() const { return obs::safe_rate(cells, seconds); }
};

double total_cells(const pipeline::SearchResult& r) {
  return r.ssv.cells + r.msv.cells + r.vit.cells + r.fwd.cells + r.bwd.cells;
}

void check_hits_match(const pipeline::SearchResult& a,
                      const pipeline::SearchResult& b) {
  if (a.hits.size() != b.hits.size()) {
    std::cerr << "FATAL: engines disagree on hit count: " << a.hits.size()
              << " vs " << b.hits.size() << "\n";
    std::exit(1);
  }
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    if (a.hits[i].seq_index != b.hits[i].seq_index ||
        a.hits[i].fwd_bits != b.hits[i].fwd_bits ||
        a.hits[i].evalue != b.hits[i].evalue) {
      std::cerr << "FATAL: engines disagree on hit " << i << "\n";
      std::exit(1);
    }
  }
}

/// Telemetry sections of the emitted JSON: one ScanTelemetry snapshot of
/// the overlapped scan, plus the disabled-recorder overhead measurement.
struct TelemetryReport {
  std::optional<obs::ScanTelemetry> snapshot;  // overlapped, max threads
  double baseline_seconds = 0;  // no recorder attached (best-of-3)
  double disabled_seconds = 0;  // disabled recorder attached (best-of-3)
  /// Fractional slowdown of the disabled-telemetry path; the roadmap's
  /// guard is < 2%.  Negative values are measurement noise.
  double disabled_overhead() const {
    return obs::valid_rate(disabled_seconds, baseline_seconds)
               // finehmm-lint: allow(unguarded-rate) -- valid_rate-guarded
               ? disabled_seconds / baseline_seconds - 1.0
               : 0.0;
  }
};

/// The always-on per-request observability cost: the daemon records
/// every completed request into three ConcurrentHistograms and a
/// TraceRing (server.cpp finish_request_trace) — instrumentation that
/// is never compiled out or gated.  Replay exactly that bookkeeping
/// around each scan and compare against the bare scan.  The roadmap
/// guard (mirrored by tools/bench_diff and CI) is < 2%.
struct HistogramReport {
  double baseline_seconds = 0;      // bare overlapped scan (best-of-3)
  double instrumented_seconds = 0;  // scan + per-request records
  double overhead() const {
    return obs::valid_rate(instrumented_seconds, baseline_seconds)
               // finehmm-lint: allow(unguarded-rate) -- valid_rate-guarded
               ? instrumented_seconds / baseline_seconds - 1.0
               : 0.0;
  }
};

/// End-to-end pipeline sweep: database load (from .fsqdb) + full filter
/// cascade, heap-parallel vs. mmap-overlapped, threads in {1, N/2, N}.
/// Each timing is best-of-3 after one warm-up; hit lists are asserted
/// bit-identical between the engines at every thread count.
std::vector<PipelineRecord> bench_pipeline(double scale, int M,
                                           TelemetryReport& tel,
                                           HistogramReport& hist) {
  pipeline::WorkloadSpec wspec;
  wspec.db = bio::SyntheticDbSpec::swissprot_like(scale);
  wspec.homolog_fraction = 0.01;
  auto model = hmm::paper_model(M);
  auto db = pipeline::make_workload(model, wspec);
  const std::string path = "/tmp/finehmm_bench_pipeline.fsqdb";
  bio::write_seq_db_file(path, db);

  stats::CalibrateOptions calib;
  calib.n_samples = 100;
  pipeline::HmmSearch search(model, {}, calib);

  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::vector<std::size_t> thread_counts{1};
  if (hw / 2 > 1) thread_counts.push_back(hw / 2);
  if (hw > 1) thread_counts.push_back(hw);

  std::vector<PipelineRecord> records;
  for (std::size_t threads : thread_counts) {
    auto run_heap = [&] {
      auto loaded = bio::read_seq_db_file(path);
      return search.run_cpu_parallel(loaded, threads);
    };
    auto run_stream = [&] {
      bio::MappedSeqDb mapped(path);
      return search.run_cpu_overlapped(mapped, threads);
    };

    PipelineRecord heap{"parallel_heap", threads};
    PipelineRecord stream{"overlapped_mmap", threads};
    pipeline::SearchResult heap_result, stream_result;
    for (int rep = 0; rep < 4; ++rep) {  // rep 0 is the warm-up
      Timer t;
      heap_result = run_heap();
      double s = t.seconds();
      if (rep > 0 && (heap.seconds == 0 || s < heap.seconds))
        heap.seconds = s;
      t.reset();
      stream_result = run_stream();
      s = t.seconds();
      if (rep > 0 && (stream.seconds == 0 || s < stream.seconds))
        stream.seconds = s;
    }
    check_hits_match(heap_result, stream_result);
    heap.cells = total_cells(heap_result);
    heap.hits = heap_result.hits.size();
    stream.cells = total_cells(stream_result);
    stream.hits = stream_result.hits.size();
    records.push_back(heap);
    records.push_back(stream);
    std::printf("pipeline threads=%zu  heap=%.4g  mmap-overlap=%.4g "
                "cells/s  (x%.2f, %zu hits)\n",
                threads, heap.cells_per_sec(), stream.cells_per_sec(),
                obs::safe_rate(heap.seconds, stream.seconds), stream.hits);
  }

  // Telemetry overhead guard: the overlapped scan at max threads with no
  // recorder vs. a disabled recorder attached — the disabled path must
  // cost < 2% (the instrumentation reduces to one pointer test per
  // site).  Then one enabled run captures the snapshot for the report.
  {
    const std::size_t threads = thread_counts.back();
    bio::MappedSeqDb mapped(path);
    obs::RecorderConfig rcfg;
    rcfg.enabled = false;
    obs::Recorder disabled(rcfg);
    auto timed_run = [&](obs::Recorder* rec) {
      search.set_recorder(rec);
      Timer t;
      auto r = search.run_cpu_overlapped(mapped, threads);
      const double s = t.seconds();
      search.set_recorder(nullptr);
      (void)r;
      return s;
    };
    // Interleaved pairs (first is warm-up): clock ramp and cache drift
    // hit both arms equally, so the smoke-scale comparison isn't
    // dominated by which arm happened to run first.
    double base_best = 0, dis_best = 0;
    for (int rep = 0; rep < 6; ++rep) {
      const double b = timed_run(nullptr);
      const double d = timed_run(&disabled);
      if (rep == 0) continue;
      if (base_best == 0 || b < base_best) base_best = b;
      if (dis_best == 0 || d < dis_best) dis_best = d;
    }
    tel.baseline_seconds = base_best;
    tel.disabled_seconds = dis_best;

    obs::Recorder enabled;
    search.set_recorder(&enabled);
    auto traced = search.run_cpu_overlapped(mapped, threads);
    tel.snapshot = traced.telemetry;
    search.set_recorder(nullptr);
    std::printf("telemetry overhead (disabled recorder): %+.2f%%\n",
                tel.disabled_overhead() * 100.0);
  }

  // Always-on histogram guard: the same overlapped scan, with and
  // without the daemon's per-completed-request bookkeeping (three
  // ConcurrentHistogram records, the steady_clock reads that feed them,
  // and a TraceRing push).  A request's sweep costs milliseconds; the
  // records cost a few relaxed atomic adds, so this should be noise.
  {
    const std::size_t threads = thread_counts.back();
    bio::MappedSeqDb mapped(path);
    obs::ConcurrentHistogram e2e_hist, queue_hist, sweep_hist;
    obs::TraceRing ring(64);
    auto timed_run = [&](bool instrumented) {
      Timer t;
      const auto admitted = std::chrono::steady_clock::now();
      auto r = search.run_cpu_overlapped(mapped, threads);
      if (instrumented) {
        const auto done = std::chrono::steady_clock::now();
        const double total =
            std::chrono::duration<double>(done - admitted).count();
        const auto ns = static_cast<std::uint64_t>(total * 1e9);
        e2e_hist.record(ns);
        queue_hist.record(0);
        sweep_hist.record(ns);
        obs::RequestTrace trace;
        trace.trace_id = obs::next_trace_id();
        trace.verb = "BENCH";
        trace.sweep_seconds = total;
        trace.total_seconds = total;
        ring.push(trace);
      }
      (void)r;
      return t.seconds();
    };
    // Interleave the arms pair-by-pair (first pair is warm-up) so clock
    // ramp and cache drift hit both equally; the smoke-scale scan is
    // ~10 ms, where a sequential A-then-B comparison is noise-bound.
    double base_best = 0, inst_best = 0;
    for (int rep = 0; rep < 6; ++rep) {
      const double b = timed_run(false);
      const double i = timed_run(true);
      if (rep == 0) continue;
      if (base_best == 0 || b < base_best) base_best = b;
      if (inst_best == 0 || i < inst_best) inst_best = i;
    }
    hist.baseline_seconds = base_best;
    hist.instrumented_seconds = inst_best;
    std::printf("histogram overhead (per-request records): %+.2f%%\n",
                hist.overhead() * 100.0);
  }
  std::remove(path.c_str());
  return records;
}

/// The hmmscan dual: many short models, one database.  Times 32
/// per-model scans against ONE lane-packed fused sweep (run_cpu_fused)
/// on the same pool, asserts the per-model hit lists bit-identical, and
/// records models/sec plus the packed-group shape so CI can guard the
/// >= 2x fused speedup on AVX2-capable hosts (docs/multi_model.md).
struct MultiModelReport {
  std::size_t n_models = 0;
  int min_length = 0, max_length = 0;
  std::size_t threads = 0;
  double cells = 0;          // per-model DP cells (identical both paths)
  double seq_seconds = 0;    // best-of-3 after warm-up
  double fused_seconds = 0;  // best-of-3 after warm-up
  std::size_t groups = 0, fused_models = 0;
  double models_per_group = 0, lane_occupancy = 0;
  double speedup() const {
    return obs::safe_rate(seq_seconds, fused_seconds);
  }
  double seq_models_per_sec() const {
    return obs::safe_rate(static_cast<double>(n_models), seq_seconds);
  }
  double fused_models_per_sec() const {
    return obs::safe_rate(static_cast<double>(n_models), fused_seconds);
  }
};

MultiModelReport bench_multi_model(double scale) {
  constexpr std::size_t kModels = 32;
  auto db = bio::generate_database(bio::SyntheticDbSpec::swissprot_like(scale));
  pipeline::ScanSource src(db);

  MultiModelReport rep;
  rep.n_models = kModels;
  stats::CalibrateOptions calib;
  calib.n_samples = 60;
  std::vector<std::unique_ptr<pipeline::HmmSearch>> searches;
  std::vector<int> lengths;
  for (std::size_t i = 0; i < kModels; ++i) {
    const int M = 50 + static_cast<int>(i % 8) * 6;
    lengths.push_back(M);
    auto model = hmm::generate_hmm(
        hmm::RandomHmmSpec{M, 4200 + static_cast<std::uint64_t>(i)});
    searches.push_back(
        std::make_unique<pipeline::HmmSearch>(model, pipeline::Thresholds{},
                                              calib));
  }
  rep.min_length = *std::min_element(lengths.begin(), lengths.end());
  rep.max_length = *std::max_element(lengths.begin(), lengths.end());

  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  rep.threads = hw;
  ThreadPool pool(hw);

  const int lane_width = static_cast<int>(
      cpu::backend::tier_kernels(cpu::resolve_simd_tier(
                                     cpu::active_simd_tier()))
          .u8_lanes);
  const auto plan = hmm::plan_model_groups(lengths, lane_width,
                                           hmm::fuse_options_from_env());
  rep.groups = plan.groups.size();
  rep.fused_models = plan.fused_models();
  rep.models_per_group = plan.models_per_group();
  rep.lane_occupancy = plan.lane_occupancy();

  std::vector<const pipeline::HmmSearch*> ptrs;
  for (const auto& s : searches) ptrs.push_back(s.get());

  std::vector<pipeline::SearchResult> seq_results;
  pipeline::HmmSearch::CoalescedScan fused;
  for (int rep_i = 0; rep_i < 4; ++rep_i) {  // rep 0 is the warm-up
    Timer t;
    seq_results.clear();
    for (const auto* s : ptrs) seq_results.push_back(s->run_cpu_parallel(src, pool));
    double s = t.seconds();
    if (rep_i > 0 && (rep.seq_seconds == 0 || s < rep.seq_seconds))
      rep.seq_seconds = s;
    t.reset();
    fused = pipeline::HmmSearch::run_cpu_fused(ptrs, src, pool, &plan);
    s = t.seconds();
    if (rep_i > 0 && (rep.fused_seconds == 0 || s < rep.fused_seconds))
      rep.fused_seconds = s;
  }
  // Fused hits are bit-identical to the per-model scans by contract;
  // check_hits_match exits nonzero on the first divergence.
  for (std::size_t m = 0; m < kModels; ++m)
    check_hits_match(seq_results[m], fused.per_model[m]);
  for (const auto& r : seq_results) rep.cells += total_cells(r);

  std::printf("multi-model: %zu models, sequential=%.4gs fused=%.4gs "
              "(x%.2f; %zu groups, %.1f models/group, %.1f%% lanes)\n",
              rep.n_models, rep.seq_seconds, rep.fused_seconds,
              rep.speedup(), rep.groups, rep.models_per_group,
              rep.lane_occupancy * 100.0);
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::stod(argv[1]) : 0.001;
  const int M = argc > 2 ? std::stoi(argv[2]) : 400;
  const std::string out_path =
      argc > 3 ? argv[3] : "BENCH_throughput.json";

  auto spec = bio::SyntheticDbSpec::swissprot_like(scale);
  auto db = bio::generate_database(spec);
  std::size_t total_residues = 0;
  for (std::size_t s = 0; s < db.size(); ++s)
    total_residues += db[s].length();

  auto model = hmm::paper_model(M);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  profile::VitProfile vit(prof);
  profile::FwdProfile fwd(prof);

  // Word/float stages cost ~5x the byte stages per cell; cap their slice
  // of the database so a full sweep stays interactive.
  const std::size_t n_byte = db.size();
  const std::size_t n_word = std::min<std::size_t>(db.size(), 200);

  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::vector<std::size_t> thread_counts{1};
  if (hw > 1) thread_counts.push_back(hw);

  std::vector<Record> records;
  for (cpu::SimdTier tier : cpu::supported_simd_tiers()) {
    cpu::set_simd_tier(tier);
    for (std::size_t threads : thread_counts) {
      ThreadPool pool(threads);
      pipeline::BatchScanner scanner(msv, vit, &fwd, pool.workers(), tier);
      std::vector<std::vector<float>> moccs(scanner.workers());
      // Warm-up: fault in the scanner state before the timed loops.
      for (std::size_t w = 0; w < scanner.workers(); ++w) {
        scanner.msv(w, db[0].codes.data(), db[0].length());
        scanner.decode(w, db[0].codes.data(), db[0].length(), moccs[w]);
      }

      records.push_back(time_stage(
          "ssv", tier, pool, threads, db, n_byte, M,
          [&](std::size_t w, const std::uint8_t* s, std::size_t L) {
            scanner.ssv(w, s, L);
          }));
      records.push_back(time_stage(
          "msv", tier, pool, threads, db, n_byte, M,
          [&](std::size_t w, const std::uint8_t* s, std::size_t L) {
            scanner.msv(w, s, L);
          }));
      records.push_back(time_stage(
          "vit", tier, pool, threads, db, n_word, M,
          [&](std::size_t w, const std::uint8_t* s, std::size_t L) {
            scanner.vit(w, s, L);
          }));
      records.push_back(time_stage(
          "fwd", tier, pool, threads, db, n_word, M,
          [&](std::size_t w, const std::uint8_t* s, std::size_t L) {
            scanner.fwd(w, s, L);
          }));
      records.push_back(time_stage(
          "bwd", tier, pool, threads, db, n_word, M,
          [&](std::size_t w, const std::uint8_t* s, std::size_t L) {
            scanner.decode(w, s, L, moccs[w]);
          }));

      const auto& r = records;
      std::printf("tier=%-8s threads=%zu  ssv=%.3g msv=%.3g vit=%.3g "
                  "fwd=%.3g bwd=%.3g cells/s\n",
                  cpu::simd_tier_name(tier), threads,
                  r[r.size() - 5].cells_per_sec(),
                  r[r.size() - 4].cells_per_sec(),
                  r[r.size() - 3].cells_per_sec(),
                  r[r.size() - 2].cells_per_sec(),
                  r[r.size() - 1].cells_per_sec());
    }
  }
  cpu::reset_simd_tier();

  // Full-pipeline end-to-end: heap-parallel vs. mmap-overlapped engines
  // at double the stage-sweep database scale (still interactive).
  TelemetryReport tel;
  HistogramReport hist;
  auto pipeline_records = bench_pipeline(scale * 2, M, tel, hist);

  // Many-model fused sweep: 32 short models, sequential vs lane-packed.
  auto multi = bench_multi_model(scale);

  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"throughput\",\n";
  out << "  \"host\": {\"name\": \"" << host_name()
      << "\", \"hardware_threads\": "
      << std::thread::hardware_concurrency() << ", \"simd_tier\": \""
      << cpu::simd_tier_name(cpu::active_simd_tier()) << "\"},\n";
  out << "  \"database\": {\"preset\": \"swissprot_like\", \"scale\": "
      << scale << ", \"n_sequences\": " << db.size()
      << ", \"n_residues\": " << total_residues << "},\n";
  out << "  \"model_length\": " << M << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "    {\"stage\": \"" << r.stage << "\", \"tier\": \"" << r.tier
        << "\", \"threads\": " << r.threads << ", \"cells\": " << r.cells
        << ", \"seconds\": " << r.seconds << ", \"cells_per_sec\": "
        << obs::json_rate(r.cells, r.seconds) << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  // Reference point for the streaming-scan work: end-to-end cells/sec of
  // the pre-streaming engine (heap decode + barrier-staged parallel scan)
  // on this workload, measured on the roadmap host before the mmap /
  // bucketed / overlapped changes landed.
  out << "  \"pipeline_baseline\": {\"engine\": \"parallel_heap\", "
         "\"threads\": 1, \"cells_per_sec\": 2.67178e9, "
         "\"note\": \"pre-streaming main\"},\n";
  // Reference point for the widened Forward/Backward work: single-thread
  // Forward cells/sec on this workload before the vector ladder was
  // widened past 128 bits (fwd_tier() clamped every request to SSE2).
  // The CI bench smoke guard asserts the best current fwd rate is
  // >= 3x this on AVX2-capable hosts.
  out << "  \"fwd_baseline\": {\"stage\": \"fwd\", \"tier\": \"sse2\", "
         "\"threads\": 1, \"cells_per_sec\": 1.9322e8, "
         "\"note\": \"pre-widening main, SSE2-clamped\"},\n";
  out << "  \"pipeline\": [\n";
  for (std::size_t i = 0; i < pipeline_records.size(); ++i) {
    const auto& r = pipeline_records[i];
    out << "    {\"engine\": \"" << r.engine
        << "\", \"threads\": " << r.threads << ", \"cells\": " << r.cells
        << ", \"seconds\": " << r.seconds << ", \"cells_per_sec\": "
        << obs::json_rate(r.cells, r.seconds) << ", \"hits\": " << r.hits
        << "}" << (i + 1 < pipeline_records.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  // The hmmscan-style many-model sweep: per-model cells are identical on
  // both paths (fused hits/stage counts are bit-identical by contract),
  // so the cells/sec and models/sec ratios both equal the time speedup.
  // CI asserts speedup >= 2 on AVX2-capable hosts.
  out << "  \"multi_model\": {\n";
  out << "    \"models\": " << multi.n_models << ", \"model_length_min\": "
      << multi.min_length << ", \"model_length_max\": " << multi.max_length
      << ", \"threads\": " << multi.threads << ",\n";
  out << "    \"sequential\": {\"seconds\": " << multi.seq_seconds
      << ", \"cells_per_sec\": " << obs::json_rate(multi.cells,
                                                   multi.seq_seconds)
      << ", \"models_per_sec\": "
      << obs::json_rate(static_cast<double>(multi.n_models),
                        multi.seq_seconds)
      << "},\n";
  out << "    \"fused\": {\"seconds\": " << multi.fused_seconds
      << ", \"cells_per_sec\": " << obs::json_rate(multi.cells,
                                                   multi.fused_seconds)
      << ", \"models_per_sec\": "
      << obs::json_rate(static_cast<double>(multi.n_models),
                        multi.fused_seconds)
      << ",\n";
  out << "      \"groups\": " << multi.groups << ", \"fused_models\": "
      << multi.fused_models << ", \"models_per_group\": "
      << multi.models_per_group << ", \"lane_occupancy_pct\": "
      << multi.lane_occupancy * 100.0 << "},\n";
  out << "    \"speedup\": " << multi.speedup()
      << ", \"hits_match\": true\n";
  out << "  },\n";
  // Overhead of the compiled-in-but-disabled telemetry path (roadmap
  // guard: < 2%), and the overlapped scan's unified snapshot.
  out << "  \"telemetry_overhead\": {\"baseline_seconds\": "
      << tel.baseline_seconds
      << ", \"disabled_recorder_seconds\": " << tel.disabled_seconds
      << ", \"overhead_fraction\": " << tel.disabled_overhead() << "},\n";
  // Per-request histogram + trace-ring bookkeeping (always on in the
  // daemon; roadmap guard: < 2%).
  out << "  \"histogram_overhead\": {\"baseline_seconds\": "
      << hist.baseline_seconds
      << ", \"instrumented_seconds\": " << hist.instrumented_seconds
      << ", \"overhead_fraction\": " << hist.overhead() << "},\n";
  out << "  \"telemetry\":";
  if (tel.snapshot) {
    out << "\n";
    tel.snapshot->write_json(out, 2);
    out << "\n";
  } else {
    out << " null\n";
  }
  out << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
