// google-benchmark micro suite: real host-machine throughput of every
// scoring engine (these are wall-clock numbers on THIS machine, unlike
// the figure benches, which model the paper's hardware).
#include <benchmark/benchmark.h>

#include "bio/packing.hpp"
#include "bio/synthetic.hpp"
#include "cpu/fwd_filter.hpp"
#include "cpu/generic.hpp"
#include "cpu/msv_filter.hpp"
#include "cpu/msv_scalar.hpp"
#include "cpu/msv_wide.hpp"
#include "cpu/simd_backend/simd_tier.hpp"
#include "cpu/ssv.hpp"
#include "cpu/vit_filter.hpp"
#include "cpu/vit_scalar.hpp"
#include "gpu/search.hpp"
#include "hmm/generator.hpp"

namespace {

using namespace finehmm;

struct MicroFixture {
  hmm::Plan7Hmm model;
  hmm::SearchProfile prof;
  profile::MsvProfile msv;
  profile::VitProfile vit;
  bio::Sequence seq;

  explicit MicroFixture(int M)
      : model(hmm::paper_model(M)),
        prof(model, hmm::AlignMode::kLocalMultihit, 400),
        msv(prof),
        vit(prof) {
    Pcg32 rng(1);
    seq = bio::random_sequence(400, rng);
  }
};

MicroFixture& fixture(int M) {
  static MicroFixture f100(100);
  static MicroFixture f400(400);
  static MicroFixture f1002(1002);
  if (M == 100) return f100;
  if (M == 400) return f400;
  return f1002;
}

void set_cell_rate(benchmark::State& state, int M) {
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 400.0 * M,
      benchmark::Counter::kIsRate);
}

void BM_MsvScalar(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cpu::msv_scalar(f.msv, f.seq.codes.data(), f.seq.length()));
  set_cell_rate(state, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_MsvScalar)->Arg(100)->Arg(400)->Arg(1002);

void BM_MsvStriped(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  cpu::MsvFilter filter(f.msv);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        filter.score(f.seq.codes.data(), f.seq.length()));
  set_cell_rate(state, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_MsvStriped)->Arg(100)->Arg(400)->Arg(1002);

template <int N>
void BM_MsvWide(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  cpu::WideMsvStripes<N> stripes(f.msv);
  for (auto _ : state)
    benchmark::DoNotOptimize(cpu::msv_striped_wide<N>(
        f.msv, stripes, f.seq.codes.data(), f.seq.length()));
  set_cell_rate(state, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_MsvWide<32>)->Arg(400);
BENCHMARK(BM_MsvWide<64>)->Arg(400);

// Per-tier variants: range(1) is the SimdTier (0 portable / 1 sse2 /
// 2 avx2); tiers this host can't run are skipped, not failed.  The AVX2
// vs. portable ratio here is the tentpole's headline number.
void BM_MsvStripedTier(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  const auto tier = static_cast<cpu::SimdTier>(state.range(1));
  if (!cpu::simd_tier_supported(tier)) {
    state.SkipWithError("tier not supported on this host");
    return;
  }
  cpu::MsvFilter filter(f.msv, tier);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        filter.score(f.seq.codes.data(), f.seq.length()));
  set_cell_rate(state, static_cast<int>(state.range(0)));
  state.SetLabel(cpu::simd_tier_name(filter.tier()));
}
BENCHMARK(BM_MsvStripedTier)
    ->Args({400, 0})
    ->Args({400, 1})
    ->Args({400, 2})
    ->Args({1002, 0})
    ->Args({1002, 2});

void BM_VitStripedTier(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  const auto tier = static_cast<cpu::SimdTier>(state.range(1));
  if (!cpu::simd_tier_supported(tier)) {
    state.SkipWithError("tier not supported on this host");
    return;
  }
  cpu::VitFilter filter(f.vit, tier);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        filter.score(f.seq.codes.data(), f.seq.length()));
  set_cell_rate(state, static_cast<int>(state.range(0)));
  state.SetLabel(cpu::simd_tier_name(filter.tier()));
}
BENCHMARK(BM_VitStripedTier)
    ->Args({400, 0})
    ->Args({400, 1})
    ->Args({400, 2})
    ->Args({1002, 0})
    ->Args({1002, 2});

void BM_VitScalar(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cpu::vit_scalar(f.vit, f.seq.codes.data(), f.seq.length()));
  set_cell_rate(state, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_VitScalar)->Arg(100)->Arg(400);

void BM_VitStriped(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  cpu::VitFilter filter(f.vit);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        filter.score(f.seq.codes.data(), f.seq.length()));
  set_cell_rate(state, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_VitStriped)->Arg(100)->Arg(400);

void BM_SsvStriped(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cpu::ssv_striped(f.msv, f.seq.codes.data(), f.seq.length()));
  set_cell_rate(state, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_SsvStriped)->Arg(100)->Arg(400);

void BM_FwdFilterStriped(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  profile::FwdProfile fwd(f.prof);
  cpu::FwdFilter filter(fwd);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        filter.score(f.seq.codes.data(), f.seq.length()));
  set_cell_rate(state, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_FwdFilterStriped)->Arg(100)->Arg(400);

void BM_GenericForward(benchmark::State& state) {
  auto& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cpu::generic_forward(f.prof, f.seq.codes.data(), f.seq.length()));
  set_cell_rate(state, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_GenericForward)->Arg(100)->Arg(400);

void BM_SimtMsvKernel(benchmark::State& state) {
  // Functional simulator speed (not GPU speed): warp MSV over a small DB.
  const int M = static_cast<int>(state.range(0));
  auto& f = fixture(M);
  Pcg32 rng(7);
  bio::SequenceDatabase db;
  for (int i = 0; i < 16; ++i) db.add(bio::random_sequence(300, rng));
  bio::PackedDatabase packed(db);
  gpu::GpuSearch search(simt::DeviceSpec::tesla_k40());
  for (auto _ : state)
    benchmark::DoNotOptimize(
        search.run_msv(f.msv, packed, gpu::ParamPlacement::kShared));
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 16 * 300.0 * M,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimtMsvKernel)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_ResiduePacking(benchmark::State& state) {
  Pcg32 rng(3);
  auto seq = bio::random_sequence(10000, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(bio::pack_residues(seq.codes));
  state.counters["residues/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 10000.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ResiduePacking);

}  // namespace

BENCHMARK_MAIN();
