// Resident-daemon throughput: closed-loop clients against an in-process
// SearchServer over the loopback transport (src/server/, docs/server.md).
//
// Each client owns one connection and fires requests back to back; the
// daemon coalesces whatever is queued at each scheduler wake-up into one
// shared database sweep.  What coalescing amortizes is everything paid
// per SWEEP rather than per QUERY: the gather window a lone client eats
// on every request, pool dispatch, schedule traversal, and per-sequence
// decode — the per-query DP cells are irreducible.  So 16 closed-loop
// clients riding ~16-query sweeps must clear at least 2x the
// single-client rate; that factor is asserted (exit 1), it is the
// subsystem's reason to exist.  Latency percentiles come along for the
// roadmap's evidence trail.
//
// Results are spliced into BENCH_throughput.json under a "server" key
// (the file is created standalone when bench_throughput has not run).
//
// Usage: bench_server [db_scale] [model_length] [requests_per_client]
//                     [out.json]
//   defaults: 0.0002 (~90 sequences — small enough that sweep overhead,
//   not DP work, dominates), 60, 6, BENCH_throughput.json
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bio/synthetic.hpp"
#include "hmm/generator.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/workload.hpp"
#include "server/client.hpp"
#include "server/loopback.hpp"
#include "server/server.hpp"
#include "util/timer.hpp"

namespace {

using namespace finehmm;

double percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] + (sorted_ms[hi] - sorted_ms[lo]) * frac;
}

struct LoadPoint {
  std::size_t clients = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  double wall_seconds = 0;
  std::uint64_t sweeps = 0;   // coalesced db passes this load point cost
  double p50 = 0, p95 = 0, p99 = 0, max_ms = 0;
  double requests_per_sec() const {
    return obs::safe_rate(static_cast<double>(completed), wall_seconds);
  }
};

/// One closed-loop run: `clients` threads, `per_client` requests each,
/// against a freshly started server (so sweep counts are per-point).
LoadPoint run_point(std::size_t clients, std::size_t per_client,
                    const hmm::Plan7Hmm& model,
                    const stats::ModelStats& model_stats,
                    const bio::SequenceDatabase& db) {
  server::ServerConfig cfg;
  cfg.max_batch = 16;
  cfg.coalesce_window_ms = 2;
  server::SearchServer srv(cfg);
  srv.add_database(db);

  server::LoopbackHub hub;
  auto listener = hub.listener();
  std::thread serve_thread([&] { srv.serve(*listener); });

  std::vector<std::vector<double>> lat_ms(clients);
  std::vector<std::size_t> failures(clients, 0);
  std::vector<std::thread> crew;
  Timer wall;
  for (std::size_t c = 0; c < clients; ++c) {
    crew.emplace_back([&, c] {
      server::BlockingClient client(hub.connect());
      lat_ms[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        Timer t;
        const server::RemoteResult rr =
            client.search(0, model, &model_stats);
        if (rr.status == server::ClientStatus::kOk)
          lat_ms[c].push_back(t.seconds() * 1e3);
        else
          ++failures[c];
      }
    });
  }
  for (std::thread& t : crew) t.join();

  LoadPoint pt;
  pt.clients = clients;
  pt.wall_seconds = wall.seconds();
  srv.begin_drain();
  serve_thread.join();
  pt.sweeps = srv.stats().db_sweeps;

  std::vector<double> all;
  for (std::size_t c = 0; c < clients; ++c) {
    all.insert(all.end(), lat_ms[c].begin(), lat_ms[c].end());
    pt.failed += failures[c];
  }
  std::sort(all.begin(), all.end());
  pt.completed = all.size();
  pt.p50 = percentile(all, 50);
  pt.p95 = percentile(all, 95);
  pt.p99 = percentile(all, 99);
  pt.max_ms = all.empty() ? 0.0 : all.back();
  return pt;
}

std::string point_json(const LoadPoint& pt) {
  std::ostringstream os;
  os << "{\"clients\": " << pt.clients << ", \"completed\": " << pt.completed
     << ", \"failed\": " << pt.failed << ", \"wall_seconds\": "
     << pt.wall_seconds << ", \"db_sweeps\": " << pt.sweeps
     << ", \"requests_per_sec\": "
     << obs::json_rate(static_cast<double>(pt.completed), pt.wall_seconds)
     << ", \"latency_ms\": {\"p50\": " << pt.p50 << ", \"p95\": " << pt.p95
     << ", \"p99\": " << pt.p99 << ", \"max\": " << pt.max_ms << "}}";
  return os.str();
}

/// Splice `section` in as a top-level "server" key of an existing JSON
/// object file, or write a fresh standalone object around it.
void write_results(const std::string& path, const std::string& section) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in.good()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = buf.str();
    }
  }
  // Re-runs replace the section we spliced last time, never duplicate it.
  const std::size_t prior = existing.find(",\n  \"server\":");
  if (prior != std::string::npos) existing = existing.substr(0, prior) + "\n}\n";
  const std::size_t brace = existing.rfind('}');
  std::ofstream out(path);
  if (brace != std::string::npos) {
    // "...}\n" -> "...,\n  \"server\": {...}\n}\n"
    out << existing.substr(0, brace) << ",\n  \"server\":" << section
        << "\n}\n";
  } else {
    out << "{\n  \"bench\": \"server\",\n  \"server\":" << section << "\n}\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::stod(argv[1]) : 0.0002;
  const int M = argc > 2 ? std::stoi(argv[2]) : 60;
  const std::size_t per_client =
      argc > 3 ? static_cast<std::size_t>(std::stoul(argv[3])) : 6;
  const std::string out_path =
      argc > 4 ? argv[4] : "BENCH_throughput.json";

  pipeline::WorkloadSpec wspec;
  wspec.db = bio::SyntheticDbSpec::swissprot_like(scale);
  wspec.homolog_fraction = 0.02;
  const hmm::Plan7Hmm model = hmm::paper_model(M);
  const bio::SequenceDatabase db = pipeline::make_workload(model, wspec);

  // Calibrate once; every request ships the stats so the daemon never
  // recalibrates — the bench then measures sweeps, not calibration.
  stats::CalibrateOptions calib;
  calib.n_samples = 100;
  const pipeline::HmmSearch reference(model, {}, calib);
  const stats::ModelStats& model_stats = reference.model_stats();

  std::size_t total_residues = 0;
  for (std::size_t s = 0; s < db.size(); ++s) total_residues += db[s].length();
  std::printf("server bench: %zu sequences, %zu residues, M=%d, "
              "%zu requests/client\n",
              db.size(), total_residues, M, per_client);

  std::vector<LoadPoint> points;
  for (std::size_t clients : {std::size_t{1}, std::size_t{4},
                              std::size_t{16}}) {
    const LoadPoint pt = run_point(clients, per_client, model, model_stats,
                                   db);
    std::printf("clients=%-2zu  %.1f req/s  sweeps=%llu  p50=%.2fms "
                "p95=%.2fms p99=%.2fms  (%zu ok, %zu failed)\n",
                pt.clients, pt.requests_per_sec(),
                static_cast<unsigned long long>(pt.sweeps), pt.p50, pt.p95,
                pt.p99, pt.completed, pt.failed);
    if (pt.failed != 0) {
      std::cerr << "FATAL: " << pt.failed << " requests failed at "
                << pt.clients << " clients\n";
      return 1;
    }
    points.push_back(pt);
  }

  // The coalescing guard: with sweeps shared 16 ways, closed-loop
  // throughput at 16 clients must be at least 2x the single-client rate.
  const double single = points.front().requests_per_sec();
  const double coalesced = points.back().requests_per_sec();
  const double factor = obs::safe_rate(coalesced, single);
  std::printf("coalescing speedup (16 vs 1 clients): %.2fx\n", factor);
  if (factor < 2.0) {
    std::cerr << "FATAL: coalesced throughput only " << factor
              << "x single-client (guard: >= 2x) — batching is broken\n";
    return 1;
  }

  std::ostringstream section;
  section << " {\n    \"transport\": \"loopback\",\n"
          << "    \"model_length\": " << M << ",\n"
          << "    \"db_sequences\": " << db.size() << ",\n"
          << "    \"requests_per_client\": " << per_client << ",\n"
          << "    \"coalescing_speedup_16v1\": " << factor << ",\n"
          << "    \"load_points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i)
    section << "      " << point_json(points[i])
            << (i + 1 < points.size() ? "," : "") << "\n";
  section << "    ]\n  }";
  write_results(out_path, section.str());
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
