// Ablation: warp-shuffled reduction vs shared-memory reduction.
//
// On Kepler the row maximum xE uses butterfly __shfl_xor exchanges (5
// register-only steps with implicit broadcast); pre-Kepler hardware must
// bounce partial maxima through shared memory (§III-A "Warp-Shuffled
// Reduction" and §IV-A's Fermi portability discussion).  We run the same
// kernel with shuffle enabled and disabled and compare the op mix.
#include <cstdio>

#include "bench_common.hpp"

using namespace finehmm;
using namespace finehmm::bench;

int main() {
  auto with_shfl = simt::DeviceSpec::tesla_k40();
  auto without_shfl = with_shfl;
  without_shfl.name = "K40 with shuffle disabled";
  without_shfl.has_warp_shuffle = false;

  const int M = 200;
  auto model = hmm::paper_model(M);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  auto db = sample_database(DbPreset::swissprot(), M, bench_cell_budget());
  bio::PackedDatabase packed(db);

  std::printf("Ablation: xE reduction, MSV M=%d, %zu sequences\n\n", M,
              db.size());
  TextTable table({"variant", "shuffle ops", "smem cycles", "est time",
                   "vs shuffle"});

  double base_t = 0.0;
  for (const auto* dev : {&with_shfl, &without_shfl}) {
    gpu::GpuSearch search(*dev);
    auto run = search.run_msv(msv, packed, gpu::ParamPlacement::kShared);
    auto t = perf::estimate_gpu_time(*dev, run.counters, run.plan.occ,
                                     run.plan.cfg.warps_per_block);
    if (dev == &with_shfl) base_t = t.total_s;
    table.add_row({dev->has_warp_shuffle ? "warp shuffle (Kepler)"
                                         : "shared-memory fallback",
                   std::to_string(run.counters.shuffles),
                   std::to_string(run.counters.smem_cycles),
                   TextTable::num(t.total_s * 1e3, 2) + " ms",
                   TextTable::num(t.total_s / base_t) + "x"});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nDisabling shuffle converts every exchange into two shared-memory\n"
      "cycles and consumes reduction scratch, which is exactly the Fermi\n"
      "penalty the paper reports in §IV-A.\n");
  return 0;
}
