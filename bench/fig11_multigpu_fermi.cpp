// Figure 11 reproduction: overall MSV+P7Viterbi speedup on four GTX 580s
// (Fermi), plus the device-count scaling the paper calls "almost linear".
//
// Fermi differences exercised here (§IV-A): no warp shuffle (reductions
// bounce through shared memory, raising shared traffic and footprint),
// half the register file (32K vs 64K per SM), fewer warp slots.  The
// database is partitioned across devices by residue count; wall clock is
// the slowest device.
#include <cstdio>

#include "bench_common.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/pipeline.hpp"

using namespace finehmm;
using namespace finehmm::bench;

namespace {

struct MultiResult {
  double speedup = 0.0;
};

/// Overall speedup with the database split over n_dev Fermi GPUs.
MultiResult multi_overall(int n_dev, int M, const DbPreset& preset,
                          double homolog_fraction) {
  auto fermi = simt::DeviceSpec::gtx580();
  auto model = hmm::paper_model(M);

  pipeline::WorkloadSpec wspec;
  wspec.db = preset.spec(1e-6);
  double mean_len = wspec.db.expected_mean_length();
  wspec.db.n_sequences = std::max<std::size_t>(
      64, static_cast<std::size_t>(bench_cell_budget() / M / mean_len));
  wspec.homolog_fraction = homolog_fraction;
  auto db = pipeline::make_workload(model, wspec);
  bio::PackedDatabase packed(db);

  // Analytic MSV pass rate (see fig10): threshold mass + homologs.
  double pass = pipeline::Thresholds{}.msv_p + homolog_fraction;

  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  profile::VitProfile vit(prof);

  // Best placement per stage on one Fermi; the per-device share of the
  // full workload is 1/n_dev (partitioning is residue-balanced, verified
  // by tests), so each device's time is the single-device time / n_dev.
  double best_msv = 1e30, best_vit = 1e30;
  double cpu_msv = 0.0, cpu_vit = 0.0;
  for (auto placement :
       {gpu::ParamPlacement::kShared, gpu::ParamPlacement::kGlobal}) {
    auto m = measure_msv(fermi, msv, packed, placement, preset.full_residues);
    if (m.feasible && m.gpu_time.total_s < best_msv) {
      best_msv = m.gpu_time.total_s;
      cpu_msv = m.cpu_time;
    }
    auto v = measure_vit(fermi, vit, packed, placement,
                         preset.full_residues * pass);
    if (v.feasible && v.gpu_time.total_s < best_vit) {
      best_vit = v.gpu_time.total_s;
      cpu_vit = v.cpu_time;
    }
  }
  // The slowest device bounds the wall clock: scale by the largest
  // partition's residue share rather than the ideal 1/n.
  auto parts = gpu::partition_by_residues(packed, n_dev);
  std::uint64_t max_part = 0;
  for (const auto& p : parts) {
    std::uint64_t r = 0;
    for (auto s : p) r += packed.length(s);
    max_part = std::max(max_part, r);
  }
  double share = static_cast<double>(max_part) /
                 static_cast<double>(packed.total_residues());

  MultiResult out;
  double gpu_time = (best_msv + best_vit) * share;
  out.speedup = obs::safe_rate(cpu_msv + cpu_vit, gpu_time);
  return out;
}

}  // namespace

int main() {
  std::printf("Figure 11: overall speedup on 4x GTX 580 (Fermi)\n");
  const double hom_swiss = 0.02, hom_env = 0.002;

  TextTable table({"HMM size", "Swissprot (4 GPU)", "Envnr (4 GPU)"});
  for (int M : paper_sizes()) {
    auto sp = multi_overall(4, M, DbPreset::swissprot(), hom_swiss);
    auto env = multi_overall(4, M, DbPreset::envnr(), hom_env);
    table.add_row({std::to_string(M), TextTable::num(sp.speedup),
                   TextTable::num(env.speedup)});
  }
  std::fputs(table.str().c_str(), stdout);

  // Device-count scaling at the paper's headline size.
  std::printf("\nScaling with device count (Envnr, M=400):\n");
  TextTable scaling({"devices", "overall speedup", "efficiency vs linear"});
  double base = 0.0;
  for (int n = 1; n <= 4; ++n) {
    auto r = multi_overall(n, 400, DbPreset::envnr(), hom_env);
    if (n == 1) base = r.speedup;
    scaling.add_row({std::to_string(n), TextTable::num(r.speedup),
                     TextTable::pct(r.speedup / (base * n))});
  }
  std::fputs(scaling.str().c_str(), stdout);
  std::printf(
      "\nPaper reference: up to 5.6x (Swissprot) and 7.8x (Env_nr) on four\n"
      "GTX 580s, with near-linear scaling in the number of devices.\n");
  return 0;
}
