// Ablation: warp-synchronous execution vs synchronized multi-warp blocks.
//
// The paper's central design decision (§III-A, Figs. 4-5) is to give each
// warp a whole sequence so no __syncthreads() is ever needed.  This bench
// runs the same MSV workload through both kernels and quantifies the
// synchronization overhead the warp-synchronous design eliminates.
#include <cstdio>

#include "bench_common.hpp"

using namespace finehmm;
using namespace finehmm::bench;

int main() {
  auto k40 = simt::DeviceSpec::tesla_k40();
  const int M = 400;
  auto model = hmm::paper_model(M);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);

  auto db = sample_database(DbPreset::envnr(), M, bench_cell_budget());
  bio::PackedDatabase packed(db);
  gpu::GpuSearch search(k40);

  std::printf("Ablation: synchronization overhead (MSV, M=%d, %zu seqs)\n\n",
              M, db.size());
  TextTable table({"kernel", "syncs", "sync/row", "est time", "speedup vs CPU",
                   "rel. to warp-sync"});

  auto warp = search.run_msv(msv, packed, gpu::ParamPlacement::kShared);
  auto warp_t = perf::estimate_gpu_time(k40, warp.counters, warp.plan.occ,
                                        warp.plan.cfg.warps_per_block);
  double cpu_t = perf::estimate_cpu_time(
      perf::CpuStage::kMsv, static_cast<double>(warp.counters.cells));

  table.add_row({"warp-synchronous", std::to_string(warp.counters.syncs),
                 "0.00", TextTable::num(warp_t.total_s * 1e3, 2) + " ms",
                 TextTable::num(cpu_t / warp_t.total_s), "1.00x"});

  for (int coop : {2, 4, 8}) {
    auto sync = search.run_msv_sync(msv, packed,
                                    gpu::ParamPlacement::kShared, coop);
    auto sync_t = perf::estimate_gpu_time(k40, sync.counters, sync.plan.occ,
                                          coop);
    // Scores must agree; spot check one.
    if (sync.scores[0] != warp.scores[0]) {
      std::fprintf(stderr, "FATAL: sync kernel disagrees with warp kernel\n");
      return 1;
    }
    double per_row = static_cast<double>(sync.counters.syncs) /
                     static_cast<double>(sync.counters.residues);
    table.add_row(
        {"synchronized x" + std::to_string(coop) + " warps",
         std::to_string(sync.counters.syncs), TextTable::num(per_row),
         TextTable::num(sync_t.total_s * 1e3, 2) + " ms",
         TextTable::num(cpu_t / sync_t.total_s),
         TextTable::num(sync_t.total_s / warp_t.total_s) + "x"});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nThe synchronized design pays >= 2 barriers per DP row plus a\n"
      "shared-memory reduction; the warp-synchronous kernel pays zero\n"
      "(paper §III-A: \"completely eliminates the overhead of\n"
      "synchronization\").\n");
  return 0;
}
