// Ablation: intrinsic conflict-free shared-memory access (paper §III-A).
//
// The DP row stores one byte per cell, so a warp reading 32 consecutive
// cells touches 8 words in 8 distinct banks — one cycle.  A naive layout
// that interleaves the block's warps cell-by-cell (stride = warps) or
// stores cells as words column-major (stride 32) serializes on the banks.
// We measure the simulator's replay accounting for the paper's layout and
// the pathological alternatives, then show what a conflicted MSV row
// sweep would cost end to end.
#include <cstdio>

#include "bench_common.hpp"
#include "simt/warp.hpp"

using namespace finehmm;
using namespace finehmm::bench;

namespace {

struct Pattern {
  const char* name;
  int elem_size;  // 1 = byte cells, 4 = word cells
  int stride;     // in elements
};

}  // namespace

int main() {
  auto k40 = simt::DeviceSpec::tesla_k40();

  std::printf("Ablation: shared-memory bank behaviour of row layouts\n\n");
  TextTable table({"layout", "cycles/warp-access", "slowdown"});

  const Pattern patterns[] = {
      {"byte cells, consecutive (paper)", 1, 1},
      {"word cells, consecutive", 4, 1},
      {"byte cells, stride 4 (warp-interleaved x4)", 1, 4},
      {"word cells, stride 2", 4, 2},
      {"word cells, stride 32 (column-major)", 4, 32},
  };

  double base_cycles = 0.0;
  for (const auto& p : patterns) {
    simt::PerfCounters counters;
    simt::SharedMemory smem(64 * 1024, counters);
    simt::WarpContext ctx(k40, counters, smem, 0, 1);
    const int reps = 1000;
    for (int r = 0; r < reps; ++r) {
      if (p.elem_size == 1)
        ctx.smem_read_strided<std::uint8_t>(0, 0, p.stride);
      else
        ctx.smem_read_strided<std::uint32_t>(0, 0, p.stride);
    }
    double cycles = static_cast<double>(counters.smem_cycles) / reps;
    if (base_cycles == 0.0) base_cycles = cycles;
    table.add_row({p.name, TextTable::num(cycles, 1),
                   TextTable::num(cycles / base_cycles, 1) + "x"});
  }
  std::fputs(table.str().c_str(), stdout);

  // End-to-end: inflate the measured MSV counters as if every row access
  // were a 4-way conflict (the warp-interleaved layout).
  const int M = 400;
  auto model = hmm::paper_model(M);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  auto db = sample_database(DbPreset::envnr(), M, bench_cell_budget());
  bio::PackedDatabase packed(db);
  gpu::GpuSearch search(k40);
  auto run = search.run_msv(msv, packed, gpu::ParamPlacement::kShared);
  auto clean = perf::estimate_gpu_time(k40, run.counters, run.plan.occ,
                                       run.plan.cfg.warps_per_block);
  simt::PerfCounters conflicted = run.counters;
  conflicted.smem_cycles = run.counters.smem_accesses * 4;
  auto bad = perf::estimate_gpu_time(k40, conflicted, run.plan.occ,
                                     run.plan.cfg.warps_per_block);
  std::printf(
      "\nMSV (M=%d) with the conflict-free layout: %.2f ms; the same\n"
      "kernel under a 4-way-conflicted layout would take %.2f ms (%.2fx).\n",
      M, clean.total_s * 1e3, bad.total_s * 1e3,
      bad.total_s / clean.total_s);
  return 0;
}
