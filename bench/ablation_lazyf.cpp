// Ablation: parallel Lazy-F (paper §III-B, Fig. 7).
//
// The D->D chain is the only sequential dependency in the P7Viterbi row.
// Lazy-F evaluates it optimistically: one vote per 32-position group, with
// extra iterations only where the D->D path actually improves a score.
// We sweep the model's delete-extension probability and report how many
// extra iterations fire, against the "eager" alternative that would
// propagate all 32 steps in every group (what a full serial evaluation
// costs), and against the paper's future-work prefix-sum bound of log2(32)
// = 5 steps per group.
#include <cstdio>

#include "bench_common.hpp"

using namespace finehmm;
using namespace finehmm::bench;

int main() {
  auto k40 = simt::DeviceSpec::tesla_k40();
  const int M = 256;

  std::printf("Ablation: parallel Lazy-F iteration counts (P7Viterbi, M=%d)\n",
              M);
  std::printf("groups/row = %d; eager evaluation = 32 iters/group, "
              "prefix-sum bound = 5\n\n",
              (M + 31) / 32);
  TextTable table({"delete-extend", "iters/group", "lazy-F speedup vs eager",
                   "est time", "vs lazy"});

  for (double dd : {0.05, 0.3, 0.5, 0.7, 0.85, 0.95}) {
    hmm::RandomHmmSpec spec;
    spec.length = M;
    spec.seed = 1234;
    spec.indel_open = 0.02;  // Pfam-like M->D opening rate
    spec.delete_extend = dd;
    auto model = hmm::generate_hmm(spec);
    hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
    profile::VitProfile vit(prof);
    auto db = sample_database(DbPreset::swissprot(), M,
                              bench_cell_budget() / 4);
    bio::PackedDatabase packed(db);

    gpu::GpuSearch search(k40);
    auto run = search.run_vit(vit, packed, gpu::ParamPlacement::kShared);
    auto lazy_t = perf::estimate_gpu_time(k40, run.counters, run.plan.occ,
                                          run.plan.cfg.warps_per_block);

    double groups = static_cast<double>(run.counters.residues) *
                    ((M + 31) / 32);
    double iters_per_group =
        static_cast<double>(run.counters.lazyf_inner) / groups;

    // Eager variant: every group runs all 32 propagation iterations
    // (1 shuffle + 1 add + 1 vote + 1 max each).
    simt::PerfCounters eager = run.counters;
    double extra_iters = groups * 32.0 -
                         static_cast<double>(run.counters.lazyf_inner);
    eager.shuffles += static_cast<std::uint64_t>(extra_iters);
    eager.alu += static_cast<std::uint64_t>(2.0 * extra_iters);
    eager.votes += static_cast<std::uint64_t>(extra_iters);
    auto eager_t = perf::estimate_gpu_time(k40, eager, run.plan.occ,
                                           run.plan.cfg.warps_per_block);

    table.add_row({TextTable::num(dd), TextTable::num(iters_per_group),
                   TextTable::num(eager_t.total_s / lazy_t.total_s) + "x",
                   TextTable::num(lazy_t.total_s * 1e3, 2) + " ms",
                   "1.00x"});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nLow delete-extension models converge after the single mandatory\n"
      "check; even at 95%% extension the warp-vote loop stays far below\n"
      "eager evaluation.  The paper's future work proposes prefix sums to\n"
      "bound the worst case at log2(32) iterations (§VI).\n");
  return 0;
}
