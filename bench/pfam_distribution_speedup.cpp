// Expected speedup over the Pfam model-size distribution.
//
// §IV closes with: "As the majority of use-case models, about 98.9% of
// Pfam database, have size less than 1002, the presented technique will
// offer greater benefits to vast majority of common use cases."  This
// bench makes that quantitative: it samples model sizes from the paper's
// Pfam 27.0 statistics (84.5% <= 400, 14.4% in 401..1000, 1.1% > 1000),
// runs the optimal-placement MSV stage at each sampled size, and reports
// the distribution-weighted expected speedup.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace finehmm;
using namespace finehmm::bench;

namespace {

int sample_pfam_size(Pcg32& rng) {
  double u = rng.uniform();
  if (u < 0.845) return 30 + static_cast<int>(rng.below(371));
  if (u < 0.989) return 401 + static_cast<int>(rng.below(600));
  return 1001 + static_cast<int>(rng.below(1405));
}

}  // namespace

int main() {
  auto k40 = simt::DeviceSpec::tesla_k40();
  Pcg32 rng(777);
  const int n_samples = 24;

  std::printf("Expected MSV speedup over the Pfam 27.0 size distribution\n");
  std::printf("(%d sampled families, optimal placement per size, %s)\n\n",
              n_samples, k40.name.c_str());

  std::vector<double> speedups;
  double weighted = 0.0;
  int small = 0, mid = 0, large = 0;
  for (int i = 0; i < n_samples; ++i) {
    int M = sample_pfam_size(rng);
    (M <= 400 ? small : M <= 1000 ? mid : large) += 1;

    auto db = sample_database(DbPreset::envnr(), M, bench_cell_budget() / 4);
    bio::PackedDatabase packed(db);
    auto model = hmm::paper_model(M);
    hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
    profile::MsvProfile msv(prof);

    double best = 0.0;
    for (auto placement :
         {gpu::ParamPlacement::kShared, gpu::ParamPlacement::kGlobal}) {
      auto m = measure_msv(k40, msv, packed, placement, kEnvnrResidues);
      if (m.feasible) best = std::max(best, m.speedup());
    }
    speedups.push_back(best);
    weighted += best;
  }
  weighted /= n_samples;

  std::sort(speedups.begin(), speedups.end());
  std::printf("sampled sizes: %d small (<=400), %d mid (401..1000), "
              "%d large (>1000)\n",
              small, mid, large);
  std::printf("expected speedup:   %.2fx\n", weighted);
  std::printf("median / min / max: %.2fx / %.2fx / %.2fx\n",
              speedups[speedups.size() / 2], speedups.front(),
              speedups.back());
  std::printf(
      "\nThe distribution mass sits where the shared configuration runs at\n"
      "full occupancy, so the typical Pfam family sees near-peak speedup —\n"
      "the paper's \"greater benefits to [the] vast majority of common use\n"
      "cases\".\n");
  return 0;
}
