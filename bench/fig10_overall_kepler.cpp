// Figure 10 reproduction: overall speedup of the combined MSV + P7Viterbi
// pipeline on a single Tesla K40, for Swissprot- and Env_nr-sized
// databases across the eight paper model sizes.
//
// Overall time = MSV over the whole database + P7Viterbi over the MSV
// survivors (the filter pass rate is measured on the sampled database
// with calibrated P-value thresholds, then applied to the full-scale
// cell counts).  The paper reports peaks of 3.0x (Swissprot) and 3.8x
// (Env_nr); Env_nr wins because its lower homology keeps the MSV:Viterbi
// execution ratio higher (§V).
#include <cstdio>

#include "bench_common.hpp"
#include "pipeline/pipeline.hpp"

using namespace finehmm;
using namespace finehmm::bench;

namespace {

struct OverallResult {
  double speedup = 0.0;
  double pass_rate = 0.0;
  const char* msv_cfg = "";
  const char* vit_cfg = "";
};

OverallResult overall(const simt::DeviceSpec& dev, int M,
                      const DbPreset& preset, double homolog_fraction) {
  auto model = hmm::paper_model(M);

  pipeline::WorkloadSpec wspec;
  wspec.db = preset.spec(1e-6);
  double mean_len = wspec.db.expected_mean_length();
  wspec.db.n_sequences = std::max<std::size_t>(
      48, static_cast<std::size_t>(bench_cell_budget() / M / mean_len));
  wspec.homolog_fraction = homolog_fraction;
  auto db = pipeline::make_workload(model, wspec);
  bio::PackedDatabase packed(db);

  // Analytic MSV pass rate: the calibrated P-value threshold passes
  // thr.msv_p of the null sequences plus (virtually all of) the homologs.
  // The sampled database is too small for a stable empirical rate at
  // bench scale.
  double pass = pipeline::Thresholds{}.msv_p + homolog_fraction;

  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  profile::VitProfile vit(prof);

  OverallResult out;
  out.pass_rate = pass;

  // Per-stage GPU measurements under both placements; optimal per stage.
  double best_msv = 1e30, best_vit = 1e30;
  double cpu_msv = 0.0, cpu_vit = 0.0;
  for (auto placement :
       {gpu::ParamPlacement::kShared, gpu::ParamPlacement::kGlobal}) {
    auto m = measure_msv(dev, msv, packed, placement, preset.full_residues);
    if (m.feasible && m.gpu_time.total_s < best_msv) {
      best_msv = m.gpu_time.total_s;
      cpu_msv = m.cpu_time;
      out.msv_cfg = placement_name(placement);
    }
    auto v = measure_vit(dev, vit, packed, placement,
                         preset.full_residues * pass);
    if (v.feasible && v.gpu_time.total_s < best_vit) {
      best_vit = v.gpu_time.total_s;
      cpu_vit = v.cpu_time;
      out.vit_cfg = placement_name(placement);
    }
  }
  out.speedup = (cpu_msv + cpu_vit) / (best_msv + best_vit);
  return out;
}

}  // namespace

int main() {
  auto k40 = simt::DeviceSpec::tesla_k40();
  std::printf("Figure 10: overall MSV+P7Viterbi speedup on %s\n",
              k40.name.c_str());

  // Swissprot (curated) carries more homologs than metagenomic Env_nr.
  const double hom_swiss = 0.02, hom_env = 0.002;

  TextTable table({"HMM size", "Swissprot", "Envnr", "SP pass", "ENV pass",
                   "msv cfg", "vit cfg"});
  for (int M : paper_sizes()) {
    auto sp = overall(k40, M, DbPreset::swissprot(), hom_swiss);
    auto env = overall(k40, M, DbPreset::envnr(), hom_env);
    table.add_row({std::to_string(M), TextTable::num(sp.speedup),
                   TextTable::num(env.speedup), TextTable::pct(sp.pass_rate),
                   TextTable::pct(env.pass_rate), env.msv_cfg, env.vit_cfg});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nPaper reference: maxima of 3.0x (Swissprot) and 3.8x (Env_nr);\n"
      "Env_nr wins because a lower homolog fraction keeps more of the\n"
      "runtime in the faster-accelerating MSV stage (discussion, §V).\n");
  return 0;
}
