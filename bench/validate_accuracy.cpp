// Accuracy validation — the abstract's "while preserving the sensitivity
// and accuracy of HMMER 3.0" claim, checked three ways:
//
//  1. E-value calibration: scanning a null database, the number of hits
//     reported at E-value <= x must be ~x (that is what an E-value means).
//  2. Sensitivity: planted full-length homologs must be recovered at a
//     very high rate through the full filter cascade.
//  3. Engine identity: the GPU pipeline must report exactly the CPU
//     pipeline's hits (bit-identical filters make this exact, not
//     approximate).
#include <cstdio>

#include "bench_common.hpp"
#include "pipeline/pipeline.hpp"

using namespace finehmm;
using namespace finehmm::bench;

int main() {
  const int M = 150;
  auto model = hmm::paper_model(M);
  pipeline::Thresholds thr;
  thr.report_evalue = 20.0;  // loose, so the calibration curve has points
  pipeline::HmmSearch search(model, thr);

  // ---- 1. E-value calibration on a pure null database ----
  bio::SyntheticDbSpec null_spec;
  null_spec.name = "null";
  null_spec.n_sequences = static_cast<std::size_t>(
      std::max(2000.0, bench_cell_budget() / M / 200.0));
  null_spec.seed = 321;
  auto null_db = bio::generate_database(null_spec);
  auto null_run = search.run_cpu(null_db);

  std::printf("E-value calibration (%zu null sequences):\n",
              null_db.size());
  TextTable cal({"threshold E", "expected hits <= E", "observed"});
  for (double e : {0.1, 1.0, 5.0, 10.0, 20.0}) {
    std::size_t observed = 0;
    for (const auto& hit : null_run.hits)
      if (hit.evalue <= e) ++observed;
    cal.add_row({TextTable::num(e, 1), TextTable::num(e, 1),
                 std::to_string(observed)});
  }
  std::fputs(cal.str().c_str(), stdout);
  std::printf(
      "(Observed <= expected is correct behaviour: the MSV/Viterbi filter\n"
      "cascade removes marginal null sequences before Forward, so reported\n"
      "E-values near the threshold are conservative — HMMER behaves the\n"
      "same way.)\n");

  // ---- 2. Sensitivity on planted homologs ----
  pipeline::WorkloadSpec wspec;
  wspec.db.n_sequences = 1500;
  wspec.db.seed = 55;
  wspec.homolog_fraction = 0.04;
  auto db = pipeline::make_workload(model, wspec);
  std::size_t planted = 0;
  for (std::size_t s = 0; s < db.size(); ++s)
    if (db[s].name.rfind("homolog_", 0) == 0) ++planted;

  pipeline::Thresholds strict;
  pipeline::HmmSearch strict_search(model, strict);
  auto run = strict_search.run_cpu(db);
  std::size_t found = 0;
  for (const auto& hit : run.hits)
    if (hit.name.rfind("homolog_", 0) == 0) ++found;
  std::printf("\nSensitivity: %zu/%zu planted homologs recovered (%.1f%%)\n",
              found, planted, 100.0 * found / planted);
  std::printf("False hits among reports: %zu\n", run.hits.size() - found);

  // ---- 3. CPU vs GPU identity ----
  bio::PackedDatabase packed(db);
  auto gpu_run = strict_search.run_gpu_auto(simt::DeviceSpec::tesla_k40(),
                                            db, packed);
  bool identical = gpu_run.hits.size() == run.hits.size();
  for (std::size_t i = 0; identical && i < run.hits.size(); ++i)
    identical = gpu_run.hits[i].seq_index == run.hits[i].seq_index;
  std::printf("\nGPU pipeline hit list identical to CPU: %s "
              "(%zu hits; filters are bit-exact by construction)\n",
              identical ? "YES" : "NO", gpu_run.hits.size());
  return identical ? 0 : 1;
}
