// Ablation: residue packing (paper §III-A, Fig. 6).
//
// Packing six 5-bit residues per 32-bit word cuts the per-sequence
// streaming traffic 6x: each warp issues one coalesced transaction per 6
// rows instead of one per row.  We measure the packed kernel's counters
// and reconstruct the unpacked variant's traffic (identical compute,
// byte-per-residue fetches) to price the difference.
#include <cstdio>

#include "bench_common.hpp"

using namespace finehmm;
using namespace finehmm::bench;

int main() {
  auto k40 = simt::DeviceSpec::tesla_k40();
  const int M = 400;
  auto model = hmm::paper_model(M);
  hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
  profile::MsvProfile msv(prof);
  auto db = sample_database(DbPreset::envnr(), M, bench_cell_budget());
  bio::PackedDatabase packed(db);

  gpu::GpuSearch search(k40);
  auto run = search.run_msv(msv, packed, gpu::ParamPlacement::kShared);
  auto packed_t = perf::estimate_gpu_time(k40, run.counters, run.plan.occ,
                                          run.plan.cfg.warps_per_block);

  // Unpacked variant: one 32-byte transaction per residue row instead of
  // per 6 rows; everything else identical.
  simt::PerfCounters unpacked = run.counters;
  std::uint64_t word_tx = (run.counters.residues + 5) / 6;
  std::uint64_t residue_tx = run.counters.residues;
  unpacked.gmem_transactions += residue_tx - word_tx;
  unpacked.gmem_bytes += (residue_tx - word_tx) * 32;
  auto unpacked_t = perf::estimate_gpu_time(k40, unpacked, run.plan.occ,
                                            run.plan.cfg.warps_per_block);

  std::printf("Ablation: residue packing (MSV, M=%d, %llu residues)\n\n", M,
              static_cast<unsigned long long>(run.counters.residues));
  TextTable table({"variant", "gmem transactions", "gmem bytes", "est time",
                   "relative"});
  table.add_row({"packed 6/word",
                 std::to_string(run.counters.gmem_transactions),
                 std::to_string(run.counters.gmem_bytes),
                 TextTable::num(packed_t.total_s * 1e3, 2) + " ms", "1.00x"});
  table.add_row({"unpacked 1/residue",
                 std::to_string(unpacked.gmem_transactions),
                 std::to_string(unpacked.gmem_bytes),
                 TextTable::num(unpacked_t.total_s * 1e3, 2) + " ms",
                 TextTable::num(unpacked_t.total_s / packed_t.total_s) + "x"});
  std::fputs(table.str().c_str(), stdout);

  // Isolate the residue stream itself (at production scale it dominates;
  // in this small sample the per-block parameter staging is
  // over-represented, so the total ratio understates the 6x).
  std::uint64_t stream_packed = 0, stream_unpacked = 0;
  for (std::size_t s = 0; s < packed.size(); ++s) {
    stream_packed += packed.word_count(s);   // one 32B tx per word
    stream_unpacked += packed.length(s);     // one 32B tx per residue
  }
  std::printf(
      "\nResidue-stream transactions: packed %llu vs unpacked %llu "
      "(%.2fx)\n",
      static_cast<unsigned long long>(stream_packed),
      static_cast<unsigned long long>(stream_unpacked),
      static_cast<double>(stream_unpacked) /
          static_cast<double>(stream_packed));
  std::printf(
      "Total-traffic ratio in this sampled run: %.2fx (parameter staging\n"
      "and result write-backs, amortized away at database scale, dilute\n"
      "the stream's 6x here).\n",
      static_cast<double>(unpacked.gmem_bytes) /
          static_cast<double>(run.counters.gmem_bytes));
  return 0;
}
