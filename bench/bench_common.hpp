// Shared machinery for the figure-reproduction benches.
//
// Strategy (documented in EXPERIMENTS.md): the functional SIMT simulator
// executes each kernel on a *sample* of the synthetic database — enough
// sequences for stable per-cell counter statistics — and the analytic cost
// model extrapolates to the paper's full database size (171.7M residues
// for Swissprot, 1.29G for Env_nr), which is valid because these are
// streaming kernels whose counters grow linearly in DP cells.  The CPU
// baseline is the modeled quad-core SSE HMMER 3.0 (see perf::CostModelParams).
//
// Environment knobs:
//   FINEHMM_BENCH_CELLS   sampled DP-cell budget per configuration
//                         (default 8e6; raise for tighter statistics)
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "bio/packing.hpp"
#include "bio/synthetic.hpp"
#include "gpu/search.hpp"
#include "hmm/generator.hpp"
#include "hmm/profile.hpp"
#include "obs/telemetry.hpp"
#include "perf/cost_model.hpp"
#include "pipeline/workload.hpp"
#include "util/table.hpp"

namespace finehmm::bench {

/// The paper's full database sizes (total residues).
inline constexpr double kSwissprotResidues = 171731281.0;
inline constexpr double kEnvnrResidues = 1290247663.0;

struct DbPreset {
  std::string name;
  double full_residues;
  bio::SyntheticDbSpec spec(double scale) const {
    return name == "Swissprot" ? bio::SyntheticDbSpec::swissprot_like(scale)
                               : bio::SyntheticDbSpec::envnr_like(scale);
  }
  static DbPreset swissprot() { return {"Swissprot", kSwissprotResidues}; }
  static DbPreset envnr() { return {"Envnr", kEnvnrResidues}; }
};

inline double bench_cell_budget() {
  if (const char* env = std::getenv("FINEHMM_BENCH_CELLS"))
    return std::atof(env);
  return 8e6;
}

/// Generate a sample database with roughly `cell_budget / M` residues.
inline bio::SequenceDatabase sample_database(const DbPreset& preset, int M,
                                             double cell_budget) {
  double want_residues = cell_budget / static_cast<double>(M);
  auto probe = preset.spec(1e-6);
  double mean_len = probe.expected_mean_length();
  std::size_t n = static_cast<std::size_t>(want_residues / mean_len);
  if (n < 24) n = 24;
  auto spec = probe;
  spec.n_sequences = n;
  return bio::generate_database(spec);
}

/// One stage measurement: functional sample run + extrapolated times.
struct StageMeasurement {
  gpu::StageResult run;          // counters of the sampled run
  perf::TimeEstimate gpu_time;   // extrapolated to the full database
  double cpu_time = 0.0;         // modeled CPU baseline, full database
  double occupancy = 0.0;
  bool feasible = false;
  /// Modeled CPU time over modeled GPU time; 0 when the GPU time is
  /// zero/denormal (infeasible launch) rather than inf.
  double speedup() const {
    return obs::safe_rate(cpu_time, gpu_time.total_s);
  }
};

/// Run the MSV stage of size-M model over a sampled preset database on
/// `dev`, extrapolated to the preset's full residue count.
inline StageMeasurement measure_msv(const simt::DeviceSpec& dev,
                                    const profile::MsvProfile& prof,
                                    const bio::PackedDatabase& packed,
                                    gpu::ParamPlacement placement,
                                    double full_residues) {
  StageMeasurement m;
  auto plan = gpu::plan_launch(gpu::Stage::kMsv, placement, prof.length(), dev);
  if (!plan.feasible) return m;
  m.feasible = true;
  gpu::GpuSearch search(dev);
  m.run = search.run_msv(prof, packed, placement);
  double factor =
      full_residues / static_cast<double>(packed.total_residues());
  auto sampled = perf::estimate_gpu_time(dev, m.run.counters, m.run.plan.occ,
                                         m.run.plan.cfg.warps_per_block);
  m.gpu_time = perf::extrapolate(sampled, factor);
  m.cpu_time = perf::estimate_cpu_time(
      perf::CpuStage::kMsv,
      static_cast<double>(m.run.counters.cells) * factor);
  m.occupancy = m.run.plan.occ.fraction;
  return m;
}

/// Same for the P7Viterbi stage (run over all sampled sequences; the
/// stage speedup is input-set invariant).
inline StageMeasurement measure_vit(const simt::DeviceSpec& dev,
                                    const profile::VitProfile& prof,
                                    const bio::PackedDatabase& packed,
                                    gpu::ParamPlacement placement,
                                    double full_residues) {
  StageMeasurement m;
  auto plan =
      gpu::plan_launch(gpu::Stage::kViterbi, placement, prof.length(), dev);
  if (!plan.feasible) return m;
  m.feasible = true;
  gpu::GpuSearch search(dev);
  m.run = search.run_vit(prof, packed, placement);
  double factor =
      full_residues / static_cast<double>(packed.total_residues());
  auto sampled = perf::estimate_gpu_time(dev, m.run.counters, m.run.plan.occ,
                                         m.run.plan.cfg.warps_per_block);
  m.gpu_time = perf::extrapolate(sampled, factor);
  m.cpu_time = perf::estimate_cpu_time(
      perf::CpuStage::kViterbi,
      static_cast<double>(m.run.counters.cells) * factor);
  m.occupancy = m.run.plan.occ.fraction;
  return m;
}

/// The model sizes of Figs. 9-11.
inline const std::vector<int>& paper_sizes() {
  static const std::vector<int> sizes(std::begin(hmm::kPaperModelSizes),
                                      std::end(hmm::kPaperModelSizes));
  return sizes;
}

}  // namespace finehmm::bench
