// Ablation: dynamic work queue vs static sequence assignment (tier (c)
// of the three-tiered parallelization, §III-C).
//
// Sequence lengths vary wildly (log-normal), so statically assigning
// sequence i to warp i%W leaves some warps grinding long sequences while
// others idle — the load-imbalance problem [7] solved here by the global
// ticket queue ("a single warp ... automatically continues working on the
// next available sequence").  We quantify it: per-warp total residues
// under static round-robin vs the near-perfect balance of dynamic
// fetching, and the resulting wall-clock ratio (the slowest warp gates
// the launch tail).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace finehmm;
using namespace finehmm::bench;

int main() {
  const int M = 400;
  auto k40 = simt::DeviceSpec::tesla_k40();
  auto plan = gpu::plan_launch(gpu::Stage::kMsv,
                               gpu::ParamPlacement::kShared, M, k40);
  const std::size_t n_warps =
      static_cast<std::size_t>(plan.cfg.grid_blocks) *
      plan.cfg.warps_per_block;

  std::printf("Ablation: warp scheduling, MSV M=%d, %zu resident warps\n\n",
              M, n_warps);
  TextTable table({"database", "sequences", "static max/mean", "dynamic max/mean",
                   "static slowdown"});

  for (const auto& preset : {DbPreset::swissprot(), DbPreset::envnr()}) {
    // Scheduling effects need many sequences per warp; size the sample by
    // warp count, not by the DP-cell budget.
    auto spec = preset.spec(1e-6);
    spec.n_sequences = n_warps * 24;
    auto db = bio::generate_database(spec);
    std::vector<std::uint64_t> static_load(n_warps, 0);
    std::vector<std::uint64_t> dynamic_load(n_warps, 0);

    // Static: sequence i -> warp i % W.
    for (std::size_t s = 0; s < db.size(); ++s)
      static_load[s % n_warps] += db[s].length();

    // Dynamic: greedy ticket queue — each sequence goes to the warp that
    // frees up first (equivalent to the atomic-counter queue when
    // per-sequence cost ~ length).
    for (std::size_t s = 0; s < db.size(); ++s) {
      auto it = std::min_element(dynamic_load.begin(), dynamic_load.end());
      *it += db[s].length();
    }

    auto ratio = [&](const std::vector<std::uint64_t>& load) {
      std::uint64_t mx = 0, total = 0;
      for (auto v : load) {
        mx = std::max(mx, v);
        total += v;
      }
      double mean = static_cast<double>(total) / load.size();
      return mean > 0 ? static_cast<double>(mx) / mean : 1.0;
    };

    double rs = ratio(static_load);
    double rd = ratio(dynamic_load);
    table.add_row({preset.name, std::to_string(db.size()),
                   TextTable::num(rs), TextTable::num(rd),
                   TextTable::num(rs / rd) + "x"});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nThe slowest warp gates the tail of a launch, so the static\n"
      "max/mean ratio is a lower bound on the schedule-induced slowdown\n"
      "the dynamic queue removes.  Imbalance grows with length variance\n"
      "and shrinks with sequences-per-warp.\n");
  return 0;
}
