// Architecture projection: how the paper's strategy ports forward.
//
// §IV-A demonstrates backward portability (Fermi); here we project the
// other direction onto Maxwell (GTX 980, released months before the
// paper): 96 KB of shared memory per SM doubles the resident-warp ceiling
// of the shared-parameter configuration, so the occupancy cliff that
// forces the shared->global switch moves to larger models.  The same
// kernels, occupancy rules and cost model produce the whole table.
#include <cstdio>

#include "bench_common.hpp"

using namespace finehmm;
using namespace finehmm::bench;

int main() {
  std::printf("Projection: MSV shared-configuration occupancy and speedup\n");
  std::printf("across GPU generations (Envnr-scale databases)\n\n");

  TextTable table({"HMM size", "Fermi occ", "Kepler occ", "Maxwell occ",
                   "Fermi x", "Kepler x", "Maxwell x"});

  const simt::DeviceSpec devices[] = {simt::DeviceSpec::gtx580(),
                                      simt::DeviceSpec::tesla_k40(),
                                      simt::DeviceSpec::gtx980()};

  for (int M : paper_sizes()) {
    auto db = sample_database(DbPreset::envnr(), M, bench_cell_budget() / 2);
    bio::PackedDatabase packed(db);
    auto model = hmm::paper_model(M);
    hmm::SearchProfile prof(model, hmm::AlignMode::kLocalMultihit, 400);
    profile::MsvProfile msv(prof);

    std::string occs[3], sps[3];
    for (int d = 0; d < 3; ++d) {
      auto m = measure_msv(devices[d], msv, packed,
                           gpu::ParamPlacement::kShared, kEnvnrResidues);
      occs[d] = m.feasible ? TextTable::pct(m.occupancy, 0) : "n/a";
      sps[d] = m.feasible ? TextTable::num(m.speedup()) : "n/a";
    }
    table.add_row({std::to_string(M), occs[0], occs[1], occs[2], sps[0],
                   sps[1], sps[2]});
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nMaxwell's 96 KB shared memory keeps the shared configuration's\n"
      "occupancy high deeper into the model-size range, moving the\n"
      "shared/global crossover beyond the paper's ~1002 threshold — the\n"
      "strategy ports, only the switch point shifts.\n");
  return 0;
}
